//! The stats-driven maintenance planner: index rebuilds + tiered segment
//! compaction.
//!
//! Sealed segments inherit their binning from the previous segment
//! (§4.1: appends never readjust borders), so a shifting value
//! distribution slowly degrades the index: values pile into the overflow
//! bins, imprint vectors saturate, and the false-positive weeding cost
//! grows. Instead of rebuilding eagerly — or never — the planner watches
//! three per-segment-column signals and schedules **bounded** background
//! rebuilds (one segment's index at a time, data shared, readers never
//! blocked):
//!
//! * **saturation** — mean bits-set fraction of the stored imprint vectors;
//! * **drift** — fraction of the segment's values that landed in the
//!   inherited binning's overflow bins at seal time;
//! * **observed false-positive rate** — fraction of fetched-and-compared
//!   values that did not match, accumulated by live queries.
//!
//! A second degradation mode is *structural*: trickle appends seal many
//! small segments, each paying its own index overhead (bin dictionary,
//! header, imprint-run breaks at segment boundaries) and each a separate
//! stop on every query's sealed-list walk. The planner answers with
//! LSM-style **tiered compaction**: segments are bucketed into size tiers
//! (tier *t* holds segments of `unit·fanin^t ..< unit·fanin^(t+1)` rows),
//! and a run of [`MaintenanceConfig::tier_fanin`] adjacent same-tier
//! segments is merged into one — data concatenated, bins re-sampled once
//! over the union, imprint + zonemap rebuilt — then swapped in atomically,
//! exactly like a rebuild. Ticks interleave both kinds of work, with
//! compaction throughput capped per tick by
//! [`MaintenanceConfig::compaction_budget_bytes`].
//!
//! This is the automated-index-management loop (AIM-style): observe →
//! decide → rebuild/merge → swap, with the epoch scheme making each swap
//! atomic to readers.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::catalog::Catalog;
use crate::config::MaintenanceConfig;
use crate::paths::{PathKind, MAX_PATHS, NUM_BUCKETS};
use crate::segment::SealedSegment;
use crate::table::Table;

/// Why a segment column was (or would be) rebuilt.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RebuildReason {
    /// Imprint vectors saturated past the threshold.
    Saturated(f64),
    /// Seal-time overflow drift past the threshold.
    Drifted(f64),
    /// Observed false-positive rate past the threshold.
    FalsePositives(f64),
}

/// One planned or applied rebuild.
#[derive(Debug, Clone)]
pub struct RebuildAction {
    /// Table name.
    pub table: String,
    /// Sealed segment index at planning time.
    pub segment: usize,
    /// Column name.
    pub column: String,
    /// The triggering signal.
    pub reason: RebuildReason,
}

/// One planned or applied compaction merge: `len` adjacent sealed segments
/// starting at index `start` (at planning time) merge into one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompactionAction {
    /// Table name.
    pub table: String,
    /// First sealed segment index of the merge window at planning time.
    pub start: usize,
    /// Segments merged (the tier fan-in).
    pub len: usize,
    /// Rows of the merged output segment.
    pub rows: usize,
    /// Size tier of the input segments.
    pub tier: u32,
}

/// Anything the maintenance planner wants done: re-bin one segment
/// column's index, or merge a run of adjacent segments into a higher tier.
#[derive(Debug, Clone)]
pub enum MaintenanceAction {
    /// Rebuild a degraded segment column's index in place.
    Rebuild(RebuildAction),
    /// Merge adjacent same-tier segments into one.
    Compact(CompactionAction),
}

/// Outcome of one maintenance pass.
#[derive(Debug, Default)]
pub struct MaintenanceReport {
    /// Segment columns examined.
    pub examined: usize,
    /// Rebuilds applied (segment swapped).
    pub applied: Vec<RebuildAction>,
    /// Rebuilds that lost the swap race (segment changed meanwhile).
    pub skipped: usize,
    /// Compaction merges applied (window swapped for one segment).
    pub compacted: Vec<CompactionAction>,
    /// Input data bytes consumed by the applied compactions.
    pub compaction_bytes: usize,
    /// Compaction merges that lost the swap race.
    pub compaction_races: usize,
    /// Segments whose cold data was evicted to disk this pass.
    pub evicted_segments: usize,
    /// Data bytes freed by those evictions.
    pub evicted_bytes: usize,
}

impl MaintenanceReport {
    /// Whether the pass changed nothing (no rebuilds, no compactions, no
    /// evictions).
    pub fn is_idle(&self) -> bool {
        self.applied.is_empty() && self.compacted.is_empty() && self.evicted_segments == 0
    }
}

fn diagnose(
    table: &Table,
    seg_cols: &crate::segment::AnySegCol,
    cfg: &MaintenanceConfig,
) -> Option<RebuildReason> {
    let _ = table;
    let sat = seg_cols.saturation();
    if sat > cfg.saturation_threshold {
        return Some(RebuildReason::Saturated(sat));
    }
    let drift = seg_cols.drift();
    if drift > cfg.drift_threshold {
        return Some(RebuildReason::Drifted(drift));
    }
    if let Some(fp) = seg_cols.observations().fp_rate(cfg.min_comparisons) {
        if fp > cfg.fp_threshold {
            return Some(RebuildReason::FalsePositives(fp));
        }
    }
    None
}

/// Size tier of a segment of `rows` rows: tier `t` spans
/// `unit·fanin^t ..< unit·fanin^(t+1)` rows (everything below `unit·fanin`
/// is tier 0).
fn tier_of(rows: usize, unit: usize, fanin: usize) -> u32 {
    let mut tier = 0u32;
    let mut upper = unit.saturating_mul(fanin);
    while rows >= upper {
        tier += 1;
        let next = upper.saturating_mul(fanin);
        if next == upper {
            break; // saturated at usize::MAX
        }
        upper = next;
    }
    tier
}

/// The tier policy over one frozen sealed list: walks runs of adjacent
/// same-tier segments and emits one `Compact` window per `fanin` of them,
/// skipping windows whose merged size would cross
/// [`MaintenanceConfig::max_segment_rows`]. Windows never overlap, so any
/// prefix of the plan can be applied against the same snapshot.
fn plan_compactions_for(table: &Table, sealed: &[Arc<SealedSegment>]) -> Vec<CompactionAction> {
    let cfg = &table.config().maintenance;
    let fanin = cfg.tier_fanin;
    if fanin < 2 {
        return Vec::new();
    }
    let unit =
        if cfg.min_segment_rows > 0 { cfg.min_segment_rows } else { table.config().segment_rows }
            .max(1);
    let mut actions = Vec::new();
    let mut i = 0;
    while i < sealed.len() {
        let tier = tier_of(sealed[i].rows(), unit, fanin);
        let mut run_end = i + 1;
        while run_end < sealed.len() && tier_of(sealed[run_end].rows(), unit, fanin) == tier {
            run_end += 1;
        }
        let mut start = i;
        while start + fanin <= run_end {
            let rows: usize = sealed[start..start + fanin].iter().map(|s| s.rows()).sum();
            if rows <= cfg.max_segment_rows {
                actions.push(CompactionAction {
                    table: table.name().to_string(),
                    start,
                    len: fanin,
                    rows,
                    tier,
                });
                start += fanin;
            } else {
                // Window too large for the top tier: slide past its head.
                start += 1;
            }
        }
        i = run_end;
    }
    actions
}

/// One selectivity bucket of a [`ColumnPathReport`]: how many queries the
/// bucket routed (summed over segments) and which access path the
/// segments' choosers currently rank cheapest for it.
#[derive(Debug, Clone, Default)]
pub struct BucketPathReport {
    /// Queries routed through this bucket, across all sealed segments.
    pub queries: u64,
    /// Per path slot ([`PathKind::ALL`] order): how many segment choosers
    /// currently rank it cheapest for this bucket.
    pub votes: [u64; MAX_PATHS],
    /// The majority winner across segments (`None` until some segment has
    /// measured a path for this bucket).
    pub winner: Option<PathKind>,
    /// Mean observed selectivity (hit fraction) of the bucket's queries,
    /// averaged over the segments that have recorded any — the signal the
    /// conjunction planner orders predicates by. `None` until a query has
    /// routed through the bucket.
    pub selectivity: Option<f64>,
}

/// Aggregated access-path telemetry for one table column: per selectivity
/// bucket, the per-segment-majority winner — the observable half of the
/// bucketed-chooser claim ("wide and narrow queries learn separate
/// winners"), consumed by the `pathmix` experiment and operators.
#[derive(Debug, Clone)]
pub struct ColumnPathReport {
    /// Table name.
    pub table: String,
    /// Column name.
    pub column: String,
    /// Sealed segments inspected.
    pub segments: usize,
    /// Segments whose WAH bitmap was built within budget.
    pub wah_built: usize,
    /// Segments whose WAH build exceeded the budget and fell back.
    pub wah_rejected: usize,
    /// One entry per selectivity bucket (index = bucket).
    pub buckets: Vec<BucketPathReport>,
}

/// Walks one frozen sealed snapshot per table and aggregates every
/// column's per-bucket [`PathChooser`](crate::paths::PathChooser) state:
/// each segment casts one vote per bucket for the path it currently ranks
/// cheapest, and the majority becomes the bucket's winner.
pub fn path_report(catalog: &Catalog) -> Vec<ColumnPathReport> {
    let mut out = Vec::new();
    for table in catalog.tables() {
        let sealed = table.sealed_snapshot();
        for (ci, def) in table.schema().iter().enumerate() {
            let mut report = ColumnPathReport {
                table: table.name().to_string(),
                column: def.name.clone(),
                segments: sealed.len(),
                wah_built: 0,
                wah_rejected: 0,
                buckets: vec![BucketPathReport::default(); NUM_BUCKETS],
            };
            let mut sel_segments = [0u64; NUM_BUCKETS];
            for seg in sealed.iter() {
                let col = &seg.columns()[ci];
                match col.wah_built() {
                    Some(true) => report.wah_built += 1,
                    Some(false) => report.wah_rejected += 1,
                    None => {}
                }
                let chooser = col.chooser();
                for (b, bucket) in
                    report.buckets.iter_mut().enumerate().take(chooser.bucket_count())
                {
                    bucket.queries += chooser.bucket_queries(b);
                    if let Some(w) = chooser.winner(b) {
                        bucket.votes[w.slot()] += 1;
                    }
                    if let Some(sel) = chooser.selectivity(b) {
                        let acc = bucket.selectivity.get_or_insert(0.0);
                        // Accumulate the sum here; the post-pass below
                        // divides by the contributing-segment count.
                        *acc += sel;
                        sel_segments[b] += 1;
                    }
                }
            }
            for (b, bucket) in report.buckets.iter_mut().enumerate() {
                if let Some(acc) = bucket.selectivity.as_mut() {
                    *acc /= sel_segments[b] as f64;
                }
                bucket.winner = PathKind::ALL
                    .into_iter()
                    .enumerate()
                    .filter(|(slot, _)| bucket.votes[*slot] > 0)
                    .max_by_key(|(slot, _)| bucket.votes[*slot])
                    .map(|(_, p)| p);
            }
            out.push(report);
        }
    }
    out
}

/// Inspects every table and returns what a maintenance pass would do —
/// index rebuilds and compaction merges — without touching anything.
pub fn plan(catalog: &Catalog) -> Vec<MaintenanceAction> {
    let mut actions = Vec::new();
    for table in catalog.tables() {
        let cfg = &table.config().maintenance;
        let sealed = table.sealed_snapshot();
        for (si, seg) in sealed.iter().enumerate() {
            for (ci, col) in seg.columns().iter().enumerate() {
                if let Some(reason) = diagnose(&table, col, cfg) {
                    actions.push(MaintenanceAction::Rebuild(RebuildAction {
                        table: table.name().to_string(),
                        segment: si,
                        column: table.schema()[ci].name.clone(),
                        reason,
                    }));
                }
            }
        }
        actions.extend(
            plan_compactions_for(&table, &sealed).into_iter().map(MaintenanceAction::Compact),
        );
    }
    actions
}

/// One maintenance pass: diagnose and rebuild degraded segment columns,
/// then merge small segment tiers under the compaction budget, swapping
/// every result in atomically. Returns what happened.
pub fn maintenance_tick(catalog: &Catalog) -> MaintenanceReport {
    let mut report = MaintenanceReport::default();
    for table in catalog.tables() {
        let cfg = table.config().maintenance.clone();
        let sealed = table.sealed_snapshot();
        for (si, seg) in sealed.iter().enumerate() {
            let mut degraded: Vec<(usize, RebuildReason)> = Vec::new();
            for (ci, col) in seg.columns().iter().enumerate() {
                report.examined += 1;
                if let Some(reason) = diagnose(&table, col, &cfg) {
                    degraded.push((ci, reason));
                }
            }
            if degraded.is_empty() {
                continue;
            }
            // Rebuild every degraded column of the segment off the frozen
            // snapshot (no locks held), then swap once — the swap checks
            // the segment is still the one we rebuilt from, so a true
            // concurrent change (not our own swap) makes it a no-op.
            let cols: Vec<usize> = degraded.iter().map(|d| d.0).collect();
            let rebuilt = seg.with_rebuilt_columns(&cols);
            if table.replace_segment(si, seg, rebuilt) {
                for (ci, reason) in degraded {
                    report.applied.push(RebuildAction {
                        table: table.name().to_string(),
                        segment: si,
                        column: table.schema()[ci].name.clone(),
                        reason,
                    });
                }
            } else {
                report.skipped += degraded.len();
            }
        }
        compact_table(&table, &cfg, &mut report);
        evict_cold(&table, &mut report);
    }
    report
}

/// The eviction half of one tick: when a table's resident sealed data
/// exceeds the table's configured `storage.max_resident_data_bytes`
/// budget, persisted segments
/// are evicted **coldest first** — ascending cumulative per-column query
/// counts, the same observation stream the rebuild planner reads — until
/// the table is back under budget. Only the data pages go; imprints and
/// zonemaps stay resident, so evicted segments keep answering
/// fully-covered counts from memory and pruning candidates for
/// everything else. Never-persisted segments (memory-only tables, or a
/// segment whose durable write failed) are silently skipped: eviction
/// must not lose data.
fn evict_cold(table: &Table, report: &mut MaintenanceReport) {
    let budget = table.config().storage.max_resident_data_bytes;
    if budget == usize::MAX {
        return;
    }
    let sealed = table.sealed_snapshot();
    let mut resident: usize = sealed.iter().map(|s| s.data_bytes_resident()).sum();
    if resident <= budget {
        return;
    }
    let heat = |seg: &SealedSegment| -> u64 {
        seg.columns()
            .iter()
            // ordering: a heat estimate — a stale count only shifts the
            // eviction order, never correctness.
            .map(|c| c.observations().queries.load(std::sync::atomic::Ordering::Relaxed))
            .sum()
    };
    let mut order: Vec<usize> = (0..sealed.len()).collect();
    order.sort_by_key(|&i| heat(&sealed[i]));
    for i in order {
        if resident <= budget {
            break;
        }
        let freed = sealed[i].evict();
        if freed > 0 {
            resident = resident.saturating_sub(freed);
            report.evicted_segments += 1;
            report.evicted_bytes += freed;
        }
    }
}

/// The compaction half of one tick. Each pass of the outer loop freezes one
/// snapshot, plans once, and applies *every* planned window against it —
/// the windows are non-overlapping and ascending, so later windows stay
/// valid after earlier swaps once their indices are shifted by the
/// segments already consumed. Merges are built off the snapshot with no
/// locks held and swapped in atomically. The outer loop then re-plans so
/// merges cascade within one tick (four tier-0 merges can produce the four
/// tier-1 segments that immediately merge into a tier-2), stopping when
/// the plan is empty, the byte budget is spent, or a swap loses a race
/// (stale snapshot; the next tick retries).
fn compact_table(table: &Table, cfg: &MaintenanceConfig, report: &mut MaintenanceReport) {
    let budget = match cfg.compaction_budget_bytes {
        0 => usize::MAX,
        b => b,
    };
    let mut spent = 0usize;
    loop {
        let sealed = table.sealed_snapshot();
        let plan = plan_compactions_for(table, &sealed);
        if plan.is_empty() {
            return;
        }
        // Each applied merge replaces `len` segments by one, shifting every
        // later window left by `len - 1` in the live list.
        let mut shift = 0usize;
        for action in plan {
            let window = &sealed[action.start..action.start + action.len];
            let bytes: usize = window
                .iter()
                .map(|s| s.columns().iter().map(|c| c.data_bytes()).sum::<usize>())
                .sum();
            // Always make progress on the first merge so tiering cannot
            // stall, but stop starting new ones past the budget.
            if spent > 0 && spent + bytes > budget {
                return;
            }
            let merged = SealedSegment::merge(window, table.config());
            if table.replace_segments(action.start - shift, window, merged) {
                shift += action.len - 1;
                spent += bytes;
                report.compaction_bytes += bytes;
                report.compacted.push(action);
            } else {
                report.compaction_races += 1;
                return;
            }
        }
    }
}

/// A background thread running [`maintenance_tick`] on an interval.
pub struct MaintenanceDaemon {
    stop: Arc<(Mutex<bool>, Condvar)>,
    running: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MaintenanceDaemon {
    /// Starts the daemon over `catalog`, ticking every `interval`.
    pub fn start(catalog: Arc<Catalog>, interval: Duration) -> MaintenanceDaemon {
        let stop = Arc::new((Mutex::new(false), Condvar::new()));
        let running = Arc::new(AtomicBool::new(true));
        let stop2 = Arc::clone(&stop);
        let running2 = Arc::clone(&running);
        let handle = std::thread::Builder::new()
            .name("imprints-maintenance".into())
            .spawn(move || {
                let (lock, cv) = &*stop2;
                loop {
                    let _ = maintenance_tick(&catalog);
                    let guard = lock.lock().expect("daemon lock");
                    let (guard, _) =
                        cv.wait_timeout_while(guard, interval, |stopped| !*stopped).expect("wait");
                    if *guard {
                        break;
                    }
                }
                running2.store(false, Ordering::Release);
            })
            .expect("spawn maintenance thread");
        MaintenanceDaemon { stop, running, handle: Some(handle) }
    }

    /// Whether the daemon thread is still alive.
    pub fn is_running(&self) -> bool {
        self.running.load(Ordering::Acquire)
    }

    /// Stops the daemon and joins its thread.
    pub fn stop(&mut self) {
        {
            let (lock, cv) = &*self.stop;
            *lock.lock().expect("daemon lock") = true;
            cv.notify_all();
        }
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for MaintenanceDaemon {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use colstore::relation::AnyColumn;
    use colstore::{ColumnType, Value};
    use imprints::relation_index::ValueRange;

    fn drifted_table(cat: &Catalog) -> Arc<Table> {
        let cfg = EngineConfig { segment_rows: 512, ..Default::default() };
        let t = cat.create_table("drift", &[("v", ColumnType::I64)], cfg).unwrap();
        // First segments: small domain. Later segments: domain shifted far
        // outside the inherited borders → drift signal fires.
        let lo: Vec<i64> = (0..1024).map(|i| i % 1000).collect();
        t.append_batch(vec![AnyColumn::I64(lo.into_iter().collect())]).unwrap();
        let hi: Vec<i64> = (0..1024).map(|i| 10_000_000 + i % 1000).collect();
        t.append_batch(vec![AnyColumn::I64(hi.into_iter().collect())]).unwrap();
        t
    }

    #[test]
    fn planner_detects_and_repairs_drift() {
        let cat = Catalog::new();
        let t = drifted_table(&cat);
        let planned = plan(&cat);
        assert!(
            planned.iter().any(|a| matches!(
                a,
                MaintenanceAction::Rebuild(r) if matches!(r.reason, RebuildReason::Drifted(_))
            )),
            "expected drift actions, got {planned:?}"
        );
        let pred = [("v", ValueRange::between(Value::I64(10_000_100), Value::I64(10_000_300)))];
        let before = t.query(&pred).unwrap();
        let epoch_before = t.epoch();
        let report = maintenance_tick(&cat);
        assert!(!report.applied.is_empty(), "tick must apply the planned rebuilds");
        assert!(t.epoch() > epoch_before, "swaps must bump the epoch");
        // Rebuilt index answers identically.
        let after = t.query(&pred).unwrap();
        assert_eq!(before, after);
        // Signals cleared: a second tick has nothing to do.
        let again = maintenance_tick(&cat);
        assert!(again.applied.is_empty(), "second tick should be clean, got {again:?}");
        assert!(t.stats().rebuilds.load(std::sync::atomic::Ordering::Relaxed) > 0);
    }

    #[test]
    fn one_tick_repairs_every_degraded_column_of_a_segment() {
        let cat = Catalog::new();
        let cfg = EngineConfig { segment_rows: 512, ..Default::default() };
        let t = cat
            .create_table("multi", &[("a", ColumnType::I64), ("b", ColumnType::I64)], cfg)
            .unwrap();
        // Seed segment sets the binnings; the second segment shifts BOTH
        // column domains so both columns of it drift.
        let lo: Vec<i64> = (0..512).map(|i| i % 1000).collect();
        t.append_batch(vec![
            AnyColumn::I64(lo.iter().copied().collect()),
            AnyColumn::I64(lo.iter().copied().collect()),
        ])
        .unwrap();
        let hi: Vec<i64> = (0..512).map(|i| 5_000_000 + i % 1000).collect();
        t.append_batch(vec![
            AnyColumn::I64(hi.iter().copied().collect()),
            AnyColumn::I64(hi.iter().copied().collect()),
        ])
        .unwrap();
        let report = maintenance_tick(&cat);
        assert_eq!(report.skipped, 0, "no swap race exists, nothing may be skipped");
        let mut repaired: Vec<&str> = report.applied.iter().map(|a| a.column.as_str()).collect();
        repaired.sort_unstable();
        assert_eq!(repaired, vec!["a", "b"], "both degraded columns repaired in one tick");
        assert!(plan(&cat).is_empty(), "one tick must leave nothing diagnosed");
    }

    /// Satellite regression: a constant column appended across many sealed
    /// segments (binning inherited down the chain) is perfectly in-domain;
    /// the planner must diagnose nothing — the old bin-index drift measure
    /// kept every such segment above the threshold and rebuilt it forever.
    #[test]
    fn constant_column_never_triggers_the_rebuild_loop() {
        let cat = Catalog::new();
        // Compaction off: this test isolates the drift diagnosis.
        let cfg = EngineConfig {
            segment_rows: 512,
            maintenance: crate::config::MaintenanceConfig { tier_fanin: 0, ..Default::default() },
            ..Default::default()
        };
        let t = cat.create_table("const", &[("v", ColumnType::I64)], cfg).unwrap();
        t.append_batch(vec![AnyColumn::I64(std::iter::repeat_n(7i64, 2048).collect())]).unwrap();
        assert_eq!(t.sealed_segment_count(), 4);
        assert!(
            plan(&cat).is_empty(),
            "an in-domain constant chain must diagnose clean: {:?}",
            plan(&cat)
        );
        let report = maintenance_tick(&cat);
        assert!(report.applied.is_empty(), "nothing to rebuild: {report:?}");
        // And appending more of the same never re-arms the signal.
        t.append_batch(vec![AnyColumn::I64(std::iter::repeat_n(7i64, 1024).collect())]).unwrap();
        assert!(plan(&cat).is_empty());
    }

    #[test]
    fn path_report_aggregates_bucket_winners() {
        use colstore::Value;
        let cat = Catalog::new();
        let cfg = EngineConfig { segment_rows: 512, ..Default::default() };
        let t = cat.create_table("pr", &[("v", ColumnType::I64)], cfg).unwrap();
        let vals: Vec<i64> = (0..2048).map(|i| (i * 13) % 1000).collect();
        t.append_batch(vec![AnyColumn::I64(vals.into_iter().collect())]).unwrap();
        // Narrow queries only: exactly one bucket accumulates cadence.
        let pred = [("v", ValueRange::between(Value::I64(100), Value::I64(110)))];
        for _ in 0..48 {
            let _ = t.query(&pred).unwrap();
        }
        let reports = path_report(&cat);
        assert_eq!(reports.len(), 1);
        let col = &reports[0];
        assert_eq!((col.table.as_str(), col.column.as_str()), ("pr", "v"));
        assert_eq!(col.segments, 4);
        assert_eq!(col.wah_built + col.wah_rejected, 0, "wah disabled by default");
        let active: Vec<usize> =
            (0..col.buckets.len()).filter(|&b| col.buckets[b].queries > 0).collect();
        assert_eq!(active.len(), 1, "one selectivity class queried: {:?}", col.buckets);
        let bucket = &col.buckets[active[0]];
        assert!(bucket.winner.is_some(), "48 queries must have produced a winner");
        assert_eq!(bucket.votes.iter().sum::<u64>(), 4, "every segment casts one vote");
        let sel = bucket.selectivity.expect("queried bucket must report observed selectivity");
        // ~11 of 1000 domain values qualify — the hit fraction must be
        // tiny but present (queries did hit: 13 and 1000 share no factor).
        assert!(sel > 0.0 && sel < 0.1, "narrow predicate selectivity: {sel}");
        for b in (0..col.buckets.len()).filter(|b| !active.contains(b)) {
            assert_eq!(col.buckets[b].selectivity, None, "unqueried buckets report none");
        }
    }

    #[test]
    fn tier_of_buckets_by_size_ratio() {
        // unit 512, fanin 4: tier 0 < 2048 <= tier 1 < 8192 <= tier 2 …
        assert_eq!(tier_of(512, 512, 4), 0);
        assert_eq!(tier_of(2047, 512, 4), 0);
        assert_eq!(tier_of(2048, 512, 4), 1);
        assert_eq!(tier_of(8191, 512, 4), 1);
        assert_eq!(tier_of(8192, 512, 4), 2);
        assert!(tier_of(usize::MAX, 512, 4) >= 20, "huge segments terminate at a high tier");
    }

    #[test]
    fn compaction_plan_windows_same_tier_runs() {
        let cat = Catalog::new();
        let cfg = EngineConfig {
            segment_rows: 128,
            maintenance: crate::config::MaintenanceConfig { tier_fanin: 2, ..Default::default() },
            ..Default::default()
        };
        let t = cat.create_table("tiers", &[("v", ColumnType::I64)], cfg).unwrap();
        let vals: Vec<i64> = (0..128 * 6).map(|i| i % 97).collect();
        t.append_batch(vec![AnyColumn::I64(vals.into_iter().collect())]).unwrap();
        assert_eq!(t.sealed_segment_count(), 6);
        let planned = plan_compactions_for(&t, &t.sealed_snapshot());
        // Six tier-0 segments, fan-in 2 → three non-overlapping windows.
        assert_eq!(planned.len(), 3);
        assert!(planned.iter().all(|a| a.len == 2 && a.tier == 0 && a.rows == 256));
        assert_eq!(planned.iter().map(|a| a.start).collect::<Vec<_>>(), vec![0, 2, 4]);
    }

    #[test]
    fn tick_cascades_tiers_and_preserves_answers() {
        let cat = Catalog::new();
        let cfg = EngineConfig {
            segment_rows: 128,
            maintenance: crate::config::MaintenanceConfig {
                tier_fanin: 2,
                compaction_budget_bytes: 0, // unlimited
                ..Default::default()
            },
            ..Default::default()
        };
        let t = cat.create_table("cascade", &[("v", ColumnType::I64)], cfg).unwrap();
        let vals: Vec<i64> = (0..128 * 8).map(|i| (i * 7) % 500).collect();
        t.append_batch(vec![AnyColumn::I64(vals.iter().copied().collect())]).unwrap();
        assert_eq!(t.sealed_segment_count(), 8);
        let pred = [("v", ValueRange::between(Value::I64(40), Value::I64(90)))];
        let before = t.query(&pred).unwrap();
        let report = maintenance_tick(&cat);
        // 8 tier-0 → 4 tier-1 → 2 tier-2 → 1 tier-3, all within one tick.
        assert_eq!(report.compacted.len(), 7, "cascade must run to one segment: {report:?}");
        assert_eq!(t.sealed_segment_count(), 1);
        assert!(report.compaction_bytes > 0);
        assert_eq!(t.query(&pred).unwrap(), before, "compaction must not change answers");
        assert!(maintenance_tick(&cat).is_idle(), "a compacted table has nothing left to do");
    }

    #[test]
    fn budget_bounds_one_tick_but_progress_never_stalls() {
        let cat = Catalog::new();
        let seg_bytes = 128 * std::mem::size_of::<i64>(); // one segment's data
        let cfg = EngineConfig {
            segment_rows: 128,
            maintenance: crate::config::MaintenanceConfig {
                tier_fanin: 2,
                // Budget below even one merge's input: each tick still does
                // exactly its one guaranteed merge.
                compaction_budget_bytes: seg_bytes,
                ..Default::default()
            },
            ..Default::default()
        };
        let t = cat.create_table("budget", &[("v", ColumnType::I64)], cfg).unwrap();
        let vals: Vec<i64> = (0..128 * 4).map(|i| i % 50).collect();
        t.append_batch(vec![AnyColumn::I64(vals.into_iter().collect())]).unwrap();
        assert_eq!(t.sealed_segment_count(), 4);
        let r1 = maintenance_tick(&cat);
        assert_eq!(r1.compacted.len(), 1, "budgeted tick merges exactly one window");
        assert_eq!(t.sealed_segment_count(), 3);
        // Ticking until idle still converges.
        let mut guard = 0;
        while !maintenance_tick(&cat).is_idle() {
            guard += 1;
            assert!(guard < 16, "budgeted compaction must converge");
        }
        assert_eq!(t.sealed_segment_count(), 1);
    }

    #[test]
    fn max_segment_rows_caps_the_top_tier() {
        let cat = Catalog::new();
        let cfg = EngineConfig {
            segment_rows: 128,
            maintenance: crate::config::MaintenanceConfig {
                tier_fanin: 2,
                max_segment_rows: 256,
                compaction_budget_bytes: 0,
                ..Default::default()
            },
            ..Default::default()
        };
        let t = cat.create_table("capped", &[("v", ColumnType::I64)], cfg).unwrap();
        let vals: Vec<i64> = (0..128 * 8).map(|i| i % 10).collect();
        t.append_batch(vec![AnyColumn::I64(vals.into_iter().collect())]).unwrap();
        let mut guard = 0;
        while !maintenance_tick(&cat).is_idle() {
            guard += 1;
            assert!(guard < 16);
        }
        // 8×128 rows can only reach 256-row segments, never 512.
        assert_eq!(t.sealed_segment_count(), 4);
        let sealed = t.sealed_snapshot();
        assert!(sealed.iter().all(|s| s.rows() == 256));
    }

    #[test]
    fn fanin_below_two_disables_compaction() {
        let cat = Catalog::new();
        let cfg = EngineConfig {
            segment_rows: 128,
            maintenance: crate::config::MaintenanceConfig { tier_fanin: 0, ..Default::default() },
            ..Default::default()
        };
        let t = cat.create_table("off", &[("v", ColumnType::I64)], cfg).unwrap();
        let vals: Vec<i64> = (0..128 * 8).map(|i| i % 10).collect();
        t.append_batch(vec![AnyColumn::I64(vals.into_iter().collect())]).unwrap();
        let report = maintenance_tick(&cat);
        assert!(report.compacted.is_empty());
        assert_eq!(t.sealed_segment_count(), 8);
    }

    #[test]
    fn daemon_runs_and_stops() {
        let cat = Arc::new(Catalog::new());
        let t = { drifted_table(&cat) };
        let mut d = MaintenanceDaemon::start(Arc::clone(&cat), Duration::from_millis(5));
        // Wait for the daemon to repair the drifted segments.
        for _ in 0..500 {
            if plan(&cat).is_empty() {
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(plan(&cat).is_empty(), "daemon should have repaired drift");
        assert!(d.is_running());
        d.stop();
        assert!(!d.is_running());
        drop(t);
    }
}
