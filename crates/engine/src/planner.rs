//! The stats-driven maintenance planner.
//!
//! Sealed segments inherit their binning from the previous segment
//! (§4.1: appends never readjust borders), so a shifting value
//! distribution slowly degrades the index: values pile into the overflow
//! bins, imprint vectors saturate, and the false-positive weeding cost
//! grows. Instead of rebuilding eagerly — or never — the planner watches
//! three per-segment-column signals and schedules **bounded** background
//! rebuilds (one segment's index at a time, data shared, readers never
//! blocked):
//!
//! * **saturation** — mean bits-set fraction of the stored imprint vectors;
//! * **drift** — fraction of the segment's values that landed in the
//!   inherited binning's overflow bins at seal time;
//! * **observed false-positive rate** — fraction of fetched-and-compared
//!   values that did not match, accumulated by live queries.
//!
//! This is the automated-index-management loop (AIM-style): observe →
//! decide → rebuild → swap, with the epoch scheme making each swap atomic
//! to readers.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::catalog::Catalog;
use crate::config::MaintenanceConfig;
use crate::table::Table;

/// Why a segment column was (or would be) rebuilt.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RebuildReason {
    /// Imprint vectors saturated past the threshold.
    Saturated(f64),
    /// Seal-time overflow drift past the threshold.
    Drifted(f64),
    /// Observed false-positive rate past the threshold.
    FalsePositives(f64),
}

/// One planned or applied rebuild.
#[derive(Debug, Clone)]
pub struct RebuildAction {
    /// Table name.
    pub table: String,
    /// Sealed segment index at planning time.
    pub segment: usize,
    /// Column name.
    pub column: String,
    /// The triggering signal.
    pub reason: RebuildReason,
}

/// Outcome of one maintenance pass.
#[derive(Debug, Default)]
pub struct MaintenanceReport {
    /// Segment columns examined.
    pub examined: usize,
    /// Rebuilds applied (segment swapped).
    pub applied: Vec<RebuildAction>,
    /// Rebuilds that lost the swap race (segment changed meanwhile).
    pub skipped: usize,
}

fn diagnose(
    table: &Table,
    seg_cols: &crate::segment::AnySegCol,
    cfg: &MaintenanceConfig,
) -> Option<RebuildReason> {
    let _ = table;
    let sat = seg_cols.saturation();
    if sat > cfg.saturation_threshold {
        return Some(RebuildReason::Saturated(sat));
    }
    let drift = seg_cols.drift();
    if drift > cfg.drift_threshold {
        return Some(RebuildReason::Drifted(drift));
    }
    if let Some(fp) = seg_cols.observations().fp_rate(cfg.min_comparisons) {
        if fp > cfg.fp_threshold {
            return Some(RebuildReason::FalsePositives(fp));
        }
    }
    None
}

/// Inspects every sealed segment column of every table and returns what a
/// maintenance pass would rebuild, without touching anything.
pub fn plan(catalog: &Catalog) -> Vec<RebuildAction> {
    let mut actions = Vec::new();
    for table in catalog.tables() {
        let cfg = &table.config().maintenance;
        for (si, seg) in table.sealed_snapshot().iter().enumerate() {
            for (ci, col) in seg.columns().iter().enumerate() {
                if let Some(reason) = diagnose(&table, col, cfg) {
                    actions.push(RebuildAction {
                        table: table.name().to_string(),
                        segment: si,
                        column: table.schema()[ci].name.clone(),
                        reason,
                    });
                }
            }
        }
    }
    actions
}

/// One maintenance pass: diagnose and rebuild degraded segment columns,
/// swapping each rebuilt segment in atomically. Returns what happened.
pub fn maintenance_tick(catalog: &Catalog) -> MaintenanceReport {
    let mut report = MaintenanceReport::default();
    for table in catalog.tables() {
        let cfg = table.config().maintenance.clone();
        let sealed = table.sealed_snapshot();
        for (si, seg) in sealed.iter().enumerate() {
            let mut degraded: Vec<(usize, RebuildReason)> = Vec::new();
            for (ci, col) in seg.columns().iter().enumerate() {
                report.examined += 1;
                if let Some(reason) = diagnose(&table, col, &cfg) {
                    degraded.push((ci, reason));
                }
            }
            if degraded.is_empty() {
                continue;
            }
            // Rebuild every degraded column of the segment off the frozen
            // snapshot (no locks held), then swap once — the swap checks
            // the segment is still the one we rebuilt from, so a true
            // concurrent change (not our own swap) makes it a no-op.
            let cols: Vec<usize> = degraded.iter().map(|d| d.0).collect();
            let rebuilt = seg.with_rebuilt_columns(&cols);
            if table.replace_segment(si, seg, rebuilt) {
                for (ci, reason) in degraded {
                    report.applied.push(RebuildAction {
                        table: table.name().to_string(),
                        segment: si,
                        column: table.schema()[ci].name.clone(),
                        reason,
                    });
                }
            } else {
                report.skipped += degraded.len();
            }
        }
    }
    report
}

/// A background thread running [`maintenance_tick`] on an interval.
pub struct MaintenanceDaemon {
    stop: Arc<(Mutex<bool>, Condvar)>,
    running: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MaintenanceDaemon {
    /// Starts the daemon over `catalog`, ticking every `interval`.
    pub fn start(catalog: Arc<Catalog>, interval: Duration) -> MaintenanceDaemon {
        let stop = Arc::new((Mutex::new(false), Condvar::new()));
        let running = Arc::new(AtomicBool::new(true));
        let stop2 = Arc::clone(&stop);
        let running2 = Arc::clone(&running);
        let handle = std::thread::Builder::new()
            .name("imprints-maintenance".into())
            .spawn(move || {
                let (lock, cv) = &*stop2;
                loop {
                    let _ = maintenance_tick(&catalog);
                    let guard = lock.lock().expect("daemon lock");
                    let (guard, _) =
                        cv.wait_timeout_while(guard, interval, |stopped| !*stopped).expect("wait");
                    if *guard {
                        break;
                    }
                }
                running2.store(false, Ordering::Release);
            })
            .expect("spawn maintenance thread");
        MaintenanceDaemon { stop, running, handle: Some(handle) }
    }

    /// Whether the daemon thread is still alive.
    pub fn is_running(&self) -> bool {
        self.running.load(Ordering::Acquire)
    }

    /// Stops the daemon and joins its thread.
    pub fn stop(&mut self) {
        {
            let (lock, cv) = &*self.stop;
            *lock.lock().expect("daemon lock") = true;
            cv.notify_all();
        }
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for MaintenanceDaemon {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use colstore::relation::AnyColumn;
    use colstore::{ColumnType, Value};
    use imprints::relation_index::ValueRange;

    fn drifted_table(cat: &Catalog) -> Arc<Table> {
        let cfg = EngineConfig { segment_rows: 512, ..Default::default() };
        let t = cat.create_table("drift", &[("v", ColumnType::I64)], cfg).unwrap();
        // First segments: small domain. Later segments: domain shifted far
        // outside the inherited borders → drift signal fires.
        let lo: Vec<i64> = (0..1024).map(|i| i % 1000).collect();
        t.append_batch(vec![AnyColumn::I64(lo.into_iter().collect())]).unwrap();
        let hi: Vec<i64> = (0..1024).map(|i| 10_000_000 + i % 1000).collect();
        t.append_batch(vec![AnyColumn::I64(hi.into_iter().collect())]).unwrap();
        t
    }

    #[test]
    fn planner_detects_and_repairs_drift() {
        let cat = Catalog::new();
        let t = drifted_table(&cat);
        let planned = plan(&cat);
        assert!(
            planned.iter().any(|a| matches!(a.reason, RebuildReason::Drifted(_))),
            "expected drift actions, got {planned:?}"
        );
        let pred = [("v", ValueRange::between(Value::I64(10_000_100), Value::I64(10_000_300)))];
        let before = t.query(&pred).unwrap();
        let epoch_before = t.epoch();
        let report = maintenance_tick(&cat);
        assert!(!report.applied.is_empty(), "tick must apply the planned rebuilds");
        assert!(t.epoch() > epoch_before, "swaps must bump the epoch");
        // Rebuilt index answers identically.
        let after = t.query(&pred).unwrap();
        assert_eq!(before, after);
        // Signals cleared: a second tick has nothing to do.
        let again = maintenance_tick(&cat);
        assert!(again.applied.is_empty(), "second tick should be clean, got {again:?}");
        assert!(t.stats().rebuilds.load(std::sync::atomic::Ordering::Relaxed) > 0);
    }

    #[test]
    fn one_tick_repairs_every_degraded_column_of_a_segment() {
        let cat = Catalog::new();
        let cfg = EngineConfig { segment_rows: 512, ..Default::default() };
        let t = cat
            .create_table("multi", &[("a", ColumnType::I64), ("b", ColumnType::I64)], cfg)
            .unwrap();
        // Seed segment sets the binnings; the second segment shifts BOTH
        // column domains so both columns of it drift.
        let lo: Vec<i64> = (0..512).map(|i| i % 1000).collect();
        t.append_batch(vec![
            AnyColumn::I64(lo.iter().copied().collect()),
            AnyColumn::I64(lo.iter().copied().collect()),
        ])
        .unwrap();
        let hi: Vec<i64> = (0..512).map(|i| 5_000_000 + i % 1000).collect();
        t.append_batch(vec![
            AnyColumn::I64(hi.iter().copied().collect()),
            AnyColumn::I64(hi.iter().copied().collect()),
        ])
        .unwrap();
        let report = maintenance_tick(&cat);
        assert_eq!(report.skipped, 0, "no swap race exists, nothing may be skipped");
        let mut repaired: Vec<&str> = report.applied.iter().map(|a| a.column.as_str()).collect();
        repaired.sort_unstable();
        assert_eq!(repaired, vec!["a", "b"], "both degraded columns repaired in one tick");
        assert!(plan(&cat).is_empty(), "one tick must leave nothing diagnosed");
    }

    #[test]
    fn daemon_runs_and_stops() {
        let cat = Arc::new(Catalog::new());
        let t = { drifted_table(&cat) };
        let mut d = MaintenanceDaemon::start(Arc::clone(&cat), Duration::from_millis(5));
        // Wait for the daemon to repair the drifted segments.
        for _ in 0..500 {
            if plan(&cat).is_empty() {
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(plan(&cat).is_empty(), "daemon should have repaired drift");
        assert!(d.is_running());
        d.stop();
        assert!(!d.is_running());
        drop(t);
    }
}
