//! The morsel-driven query executor.
//!
//! A [`WorkerPool`] owns a fixed set of threads pulling closures from a
//! shared queue — workers persist across queries, so serving a query costs
//! no thread spawns. A query *scatters* one task per segment-morsel (a
//! sealed segment is the natural morsel: fixed row count, cacheline
//! aligned, with its own index) and *gathers* the per-morsel results in
//! segment order, which keeps the merged id list globally sorted without a
//! sort step.
//!
//! Worker panics are contained per task: the panicking task's slot comes
//! back as `None` from [`WorkerPool::scatter`] and the worker thread
//! survives to serve the next task.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

struct State {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    cv: Condvar,
}

/// A fixed-size pool of persistent worker threads.
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `workers` threads (at least one).
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(State { jobs: VecDeque::new(), shutdown: false }),
            cv: Condvar::new(),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("imprints-worker-{i}"))
                    .spawn(move || Self::worker_loop(&shared))
                    .expect("spawn worker thread")
            })
            .collect();
        WorkerPool { shared, handles }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    fn worker_loop(shared: &Shared) {
        loop {
            let job = {
                let mut st = shared.state.lock().expect("pool lock");
                loop {
                    if let Some(job) = st.jobs.pop_front() {
                        break job;
                    }
                    if st.shutdown {
                        return;
                    }
                    st = shared.cv.wait(st).expect("pool lock");
                }
            };
            // Contain task panics: the scatter side observes the dropped
            // result channel; this thread lives on.
            let _ = catch_unwind(AssertUnwindSafe(job));
        }
    }

    /// Enqueues one fire-and-forget job.
    pub fn spawn<F: FnOnce() + Send + 'static>(&self, f: F) {
        let mut st = self.shared.state.lock().expect("pool lock");
        if st.shutdown {
            return;
        }
        st.jobs.push_back(Box::new(f));
        drop(st);
        self.shared.cv.notify_one();
    }

    /// Runs every task on the pool and returns their results in input
    /// order. A task that panicked yields `None` in its slot.
    pub fn scatter<R, I, F>(&self, tasks: I) -> Vec<Option<R>>
    where
        R: Send + 'static,
        F: FnOnce() -> R + Send + 'static,
        I: IntoIterator<Item = F>,
    {
        let (tx, rx) = mpsc::channel::<(usize, R)>();
        let mut n = 0usize;
        for (i, task) in tasks.into_iter().enumerate() {
            let tx = tx.clone();
            self.spawn(move || {
                let r = task();
                // The receiver may have given up (query cancelled); a
                // failed send is fine.
                let _ = tx.send((i, r));
            });
            n += 1;
        }
        drop(tx);
        let mut out: Vec<Option<R>> = std::iter::repeat_with(|| None).take(n).collect();
        // Every sender is either consumed by a finished task or dropped by
        // a panicked one, so this loop always terminates.
        while let Ok((i, r)) = rx.recv() {
            out[i] = Some(r);
        }
        out
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().expect("pool lock");
            st.shutdown = true;
        }
        self.cv_notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl WorkerPool {
    fn cv_notify_all(&self) {
        self.shared.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scatter_preserves_order() {
        let pool = WorkerPool::new(4);
        let out = pool.scatter((0..100).map(|i| move || i * 2));
        assert_eq!(out.len(), 100);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, Some(i * 2));
        }
    }

    #[test]
    fn panicked_task_yields_none_and_pool_survives() {
        let pool = WorkerPool::new(2);
        let out = pool.scatter((0..8).map(|i| {
            move || {
                if i == 3 {
                    panic!("boom");
                }
                i
            }
        }));
        assert_eq!(out[3], None);
        assert_eq!(out.iter().filter(|v| v.is_some()).count(), 7);
        // Pool still works after a panic.
        let again = pool.scatter((0..4).map(|i| move || i + 1));
        assert!(again.iter().all(Option::is_some));
    }

    #[test]
    fn concurrent_scatters_with_panics_do_not_wedge_the_queue() {
        // Several requests share the pool while some of their tasks panic:
        // each scatter must come back full-length with `None` exactly in
        // its panicked slots — a panic in one request never stalls or
        // corrupts a neighbor — and the pool must stay usable afterwards.
        let pool = Arc::new(WorkerPool::new(3));
        let handles: Vec<_> = (0..6u64)
            .map(|req| {
                let pool = Arc::clone(&pool);
                std::thread::spawn(move || {
                    let out = pool.scatter((0..32u64).map(move |i| {
                        move || {
                            if req % 2 == 0 && i % 8 == req / 2 {
                                panic!("task {i} of request {req} exploded");
                            }
                            req * 1000 + i
                        }
                    }));
                    (req, out)
                })
            })
            .collect();
        for h in handles {
            let (req, out) = h.join().unwrap();
            assert_eq!(out.len(), 32);
            for (i, slot) in out.iter().enumerate() {
                if req % 2 == 0 && (i as u64) % 8 == req / 2 {
                    assert_eq!(*slot, None, "request {req} slot {i} must report the panic");
                } else {
                    assert_eq!(*slot, Some(req * 1000 + i as u64));
                }
            }
        }
        let again = pool.scatter((0..16).map(|i| move || i));
        assert!(again.iter().all(Option::is_some), "pool must survive concurrent panics");
    }

    #[test]
    fn fire_and_forget_jobs_run() {
        let pool = WorkerPool::new(3);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..50 {
            let c = Arc::clone(&counter);
            pool.spawn(move || {
                c.fetch_add(1, Ordering::SeqCst);
            });
        }
        // Synchronize via scatter (queue is FIFO per worker, so all spawned
        // jobs finish before the scatter results are all in... not strictly
        // true across workers; poll instead).
        for _ in 0..1000 {
            if counter.load(Ordering::SeqCst) == 50 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(counter.load(Ordering::SeqCst), 50);
    }

    #[test]
    fn drop_joins_workers() {
        let pool = WorkerPool::new(2);
        drop(pool); // must not hang
    }
}
