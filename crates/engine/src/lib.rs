//! # imprints-engine — a sharded, concurrent query-serving engine
//!
//! Turns the single-column [`imprints`] primitives into a serving system:
//!
//! * **Segments** ([`segment`]): columns are split into fixed-size,
//!   cacheline-aligned segments, each carrying its own [`ColumnImprints`]
//!   and [`baselines::ZoneMap`] — index (re)builds have bounded scope and
//!   segments are natural parallelism morsels.
//! * **Epoch-guarded catalog** ([`catalog`], [`table`]): relations hold
//!   their sealed segments behind an `Arc`-swap scheme; readers pin a
//!   consistent prefix in O(1) and never block while an appender seals new
//!   segments.
//! * **Morsel-driven executor** ([`executor`]): a persistent worker pool
//!   fans multi-predicate queries (late materialization: per-column
//!   imprint candidates → id-space merge-join → refinement) across
//!   segments and merges the ordered per-segment id lists.
//! * **Adaptive access paths** ([`paths`]): each segment column chooses
//!   imprint vs. zonemap vs. scan — vs. a lazily built, byte-budgeted WAH
//!   bitmap when configured — per query from observed cost, **bucketed by
//!   predicate selectivity** so wide and narrow queries learn separate
//!   winners (per-bucket EWMA + exploration cadence).
//! * **Tail-indexed write head** ([`tail`]): once the open segment is
//!   large enough, each open column buffer carries an incremental tail
//!   imprint extended on every append (§4.1: appends never readjust
//!   borders), so queries skip cachelines of the hot head instead of
//!   scanning it linearly under the open read lock.
//! * **Maintenance planner** ([`planner`]): watches saturation, append
//!   drift and observed false-positive rates, and re-bins degraded
//!   segment indexes in the background, swapping them in atomically; the
//!   same loop runs LSM-style **tiered compaction**, merging runs of
//!   adjacent same-tier sealed segments into one (re-binned once over the
//!   merged values) under a per-tick byte budget.
//!
//! ```
//! use colstore::{ColumnType, Value};
//! use imprints_engine::{Engine, EngineConfig, ValueRange};
//!
//! let engine = Engine::new(EngineConfig { segment_rows: 256, workers: 2, ..Default::default() });
//! let t = engine
//!     .create_table("readings", &[("sensor", ColumnType::U16), ("value", ColumnType::F64)])
//!     .unwrap();
//! for i in 0..1000u64 {
//!     t.append_row(&[Value::U16((i % 16) as u16), Value::F64((i % 100) as f64)]).unwrap();
//! }
//! let ids = engine
//!     .query(
//!         "readings",
//!         &[
//!             ("sensor", ValueRange::equals(Value::U16(3))),
//!             ("value", ValueRange::at_most(Value::F64(10.0))),
//!         ],
//!     )
//!     .unwrap();
//! assert!(ids.iter().all(|id| id % 16 == 3));
//! ```

#![warn(missing_docs)]

pub mod catalog;
pub mod config;
pub mod executor;
pub mod paths;
pub mod persist;
pub mod planner;
pub mod segment;
pub mod table;
pub mod tail;

use std::sync::{Arc, Mutex};
use std::time::Duration;

use colstore::{ColumnType, IdList, Result};

pub use catalog::{Catalog, StorageStats};
pub use config::{EngineConfig, MaintenanceConfig, ServiceConfig, StorageOptions};
pub use executor::WorkerPool;
pub use imprints::relation_index::{ValueRange, ValueSet};
pub use imprints::simd::RefineKernel;
pub use paths::{PathChooser, PathKind, MAX_PATHS, NUM_BUCKETS};
pub use persist::RecoveryReport;
pub use planner::{
    maintenance_tick, path_report, BucketPathReport, ColumnPathReport, CompactionAction,
    MaintenanceAction, MaintenanceDaemon, MaintenanceReport, RebuildReason,
};
pub use segment::{SealedSegment, SegBatchAnswer, SegBatchQuery};
pub use table::{BatchAnswer, BatchQuery, ColumnDef, QueryStats, Table, TableSnapshot};
pub use tail::AnyTailIndex;

/// The assembled engine: catalog + worker pool + optional maintenance
/// daemon, under one configuration.
pub struct Engine {
    cfg: EngineConfig,
    catalog: Arc<Catalog>,
    pool: Arc<WorkerPool>,
    daemon: Mutex<Option<MaintenanceDaemon>>,
}

impl Engine {
    /// Builds an engine with `cfg` (worker pool started immediately).
    pub fn new(cfg: EngineConfig) -> Engine {
        cfg.validate();
        let pool = Arc::new(WorkerPool::new(cfg.effective_workers()));
        Engine { cfg, catalog: Arc::new(Catalog::new()), pool, daemon: Mutex::new(None) }
    }

    /// Builds an engine by **recovering** the catalog from the durable
    /// state under `cfg.storage.root` (see [`Catalog::open`]). New tables
    /// created afterwards persist under the same root.
    pub fn open(cfg: EngineConfig) -> Result<(Engine, RecoveryReport)> {
        cfg.validate();
        let (catalog, report) = Catalog::open(&cfg)?;
        let pool = Arc::new(WorkerPool::new(cfg.effective_workers()));
        Ok((Engine { cfg, catalog: Arc::new(catalog), pool, daemon: Mutex::new(None) }, report))
    }

    /// Seals every table's non-empty open write head, making all appended
    /// rows durable — call before a planned shutdown (see
    /// [`Catalog::flush`]). Returns how many tables sealed a head.
    pub fn flush(&self) -> usize {
        self.catalog.flush()
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// The relation catalog.
    pub fn catalog(&self) -> &Arc<Catalog> {
        &self.catalog
    }

    /// The shared query worker pool.
    pub fn pool(&self) -> &Arc<WorkerPool> {
        &self.pool
    }

    /// Creates a table under the engine's configuration.
    pub fn create_table(&self, name: &str, schema: &[(&str, ColumnType)]) -> Result<Arc<Table>> {
        self.catalog.create_table(name, schema, self.cfg.clone())
    }

    /// Looks up a table.
    pub fn table(&self, name: &str) -> Result<Arc<Table>> {
        self.catalog.table(name)
    }

    /// Evaluates a conjunctive query on the worker pool.
    pub fn query(&self, table: &str, preds: &[(&str, ValueRange)]) -> Result<IdList> {
        self.catalog.table(table)?.query_on(&self.pool, preds)
    }

    /// Counts matching rows on the worker pool.
    pub fn count(&self, table: &str, preds: &[(&str, ValueRange)]) -> Result<u64> {
        self.catalog.table(table)?.count(preds, Some(&self.pool))
    }

    /// Starts (or restarts) the background maintenance daemon.
    pub fn start_maintenance(&self, interval: Duration) {
        let mut daemon = self.daemon.lock().expect("daemon slot");
        *daemon = Some(MaintenanceDaemon::start(Arc::clone(&self.catalog), interval));
    }

    /// Stops the maintenance daemon, if running.
    pub fn stop_maintenance(&self) {
        if let Some(mut d) = self.daemon.lock().expect("daemon slot").take() {
            d.stop();
        }
    }

    /// One synchronous maintenance pass (also available while the daemon
    /// runs; swaps are atomic either way).
    pub fn maintenance_tick(&self) -> MaintenanceReport {
        planner::maintenance_tick(&self.catalog)
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.stop_maintenance();
    }
}

// Re-exported so downstream code can name the index type without depending
// on the `imprints` crate directly.
pub use imprints::ColumnImprints;

#[cfg(test)]
mod tests {
    use super::*;
    use colstore::relation::AnyColumn;
    use colstore::Value;

    #[test]
    fn engine_end_to_end() {
        let engine =
            Engine::new(EngineConfig { segment_rows: 512, workers: 2, ..Default::default() });
        let t =
            engine.create_table("m", &[("k", ColumnType::I64), ("v", ColumnType::F64)]).unwrap();
        let k: Vec<i64> = (0..4000).map(|i| i % 257).collect();
        let v: Vec<f64> = (0..4000).map(|i| (i % 91) as f64).collect();
        t.append_batch(vec![
            AnyColumn::I64(k.iter().copied().collect()),
            AnyColumn::F64(v.iter().copied().collect()),
        ])
        .unwrap();
        let ids = engine
            .query(
                "m",
                &[
                    ("k", ValueRange::between(Value::I64(10), Value::I64(40))),
                    ("v", ValueRange::at_most(Value::F64(30.0))),
                ],
            )
            .unwrap();
        let expect: Vec<u64> = (0..4000u64)
            .filter(|&i| (10..=40).contains(&k[i as usize]) && v[i as usize] <= 30.0)
            .collect();
        assert_eq!(ids.as_slice(), expect.as_slice());
        assert_eq!(
            engine.count("m", &[("k", ValueRange::equals(Value::I64(5)))]).unwrap(),
            k.iter().filter(|&&x| x == 5).count() as u64
        );
        engine.start_maintenance(Duration::from_millis(10));
        engine.stop_maintenance();
    }
}
