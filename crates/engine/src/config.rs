//! Engine configuration.

use imprints::simd::RefineKernel;

/// Tuning knobs for tables, sealing and query execution.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Rows per sealed segment. Must be a multiple of 64 so that every
    /// scalar width's cacheline grid (8–64 values per line) divides the
    /// segment evenly and per-segment imprints never straddle a boundary.
    pub segment_rows: usize,
    /// Worker threads in the query pool (`0` = one per available core).
    pub workers: usize,
    /// Reuse the previous segment's histogram binning when sealing (the
    /// paper's §4.1 appends-don't-readjust-borders rule). The maintenance
    /// planner re-bins drifted segments in the background. When `false`
    /// every seal resamples from scratch.
    pub share_binning: bool,
    /// Threads used to build one segment's imprint at seal time.
    pub build_threads: usize,
    /// Minimum open-segment row count before the write head grows its
    /// incremental tail imprint (see [`crate::tail`]). Below the
    /// threshold queries scan the open rows linearly — a tiny head is
    /// cheaper to scan than to index, and the bin sample would be too
    /// thin; at the threshold the tail index is built from the rows
    /// accumulated so far and every later append extends it under the
    /// open write lock. `usize::MAX` disables tail indexing entirely.
    pub tail_index_min_rows: usize,
    /// Per-segment-column byte budget for the WAH bitmap access path
    /// ([`baselines::WahBitmap`]). `0` (the default) leaves WAH
    /// unregistered and each segment column keeps the three classic paths
    /// (imprint, zonemap, scan). A positive budget registers WAH as a
    /// fourth path, **built lazily** the first time a column's chooser
    /// explores it — WAH can exceed the data size on high-cardinality
    /// columns, so a column whose freshly built bitmap comes out larger
    /// than the budget discards it and permanently falls back to the
    /// three classic paths (per segment column, until a rebuild re-earns
    /// the chance). Built bitmaps count toward
    /// [`Catalog::storage_stats`](crate::Catalog::storage_stats) and
    /// `index_bytes`.
    pub wah_budget_bytes: usize,
    /// Which false-positive refinement kernel weeds fetched cachelines on
    /// every access path (imprints check lines, zonemap overlap zones,
    /// scans, WAH edge bins, tail-imprint head lines, conjunction
    /// survivors): `Auto` (currently SWAR), `Scalar` (the classic loop,
    /// kept as the differential oracle), or `Swar`. The selection scopes
    /// to the tables created with this configuration — it is resolved via
    /// [`imprints::simd::effective_kernel`] and threaded into every value
    /// check, so tables with different selections coexist in one process.
    /// The `IMPRINTS_REFINE_KERNEL` environment variable
    /// (`auto`/`scalar`/`swar`) overrides every configuration — which is
    /// how CI forces the scalar fallback through the whole suite. Either
    /// kernel returns byte-identical results; only speed differs.
    pub refine_kernel: RefineKernel,
    /// Selectivity buckets of every segment column's
    /// [`PathChooser`](crate::paths::PathChooser)
    /// (1..=[`NUM_BUCKETS`](crate::paths::NUM_BUCKETS)). Each bucket
    /// learns its own per-path cost EWMA and runs its own exploration
    /// cadence, so wide and narrow predicates converge to separate
    /// winners; `1` restores the single conflated EWMA (kept for the
    /// `pathmix` baseline comparison).
    pub path_buckets: usize,
    /// Whether multi-predicate queries may take the fused
    /// [`PlanKind::Fused`](crate::paths::PlanKind) conjunction plan —
    /// imprint bitmasks of *all* predicates intersected in row space
    /// before any value is touched, survivors refined word-wise in
    /// selectivity order — with the per-segment
    /// [`PlanChooser`](crate::paths::PlanChooser) arbitrating between it
    /// and the per-predicate fallback by observed cost. `false` pins
    /// every conjunction to the per-predicate plan (candidate-range
    /// intersection + gather-kernel refinement), which is the baseline
    /// the `multipred` bench experiment compares against.
    pub conjunction_planning: bool,
    /// Background maintenance thresholds.
    pub maintenance: MaintenanceConfig,
    /// Durable storage: where sealed segments persist and how much of
    /// their data stays memory-resident.
    pub storage: StorageOptions,
    /// Serving-layer knobs consumed by the network front-end
    /// (`imprints-server`): admission-queue depth and batching tick. Kept
    /// on the engine configuration so a deployment tunes its engine and
    /// its service surface in one place.
    pub service: ServiceConfig,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            segment_rows: 1 << 16,
            workers: 0,
            share_binning: true,
            build_threads: 1,
            tail_index_min_rows: 4096,
            wah_budget_bytes: 0,
            refine_kernel: RefineKernel::Auto,
            path_buckets: crate::paths::NUM_BUCKETS,
            conjunction_planning: true,
            maintenance: MaintenanceConfig::default(),
            storage: StorageOptions::default(),
            service: ServiceConfig::default(),
        }
    }
}

impl EngineConfig {
    /// Resolved worker count (`workers`, or one per core when 0).
    pub fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            self.workers
        } else {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
        }
    }

    /// Panics if the configuration is structurally invalid.
    pub fn validate(&self) {
        assert!(self.segment_rows > 0, "segment_rows must be positive");
        assert_eq!(self.segment_rows % 64, 0, "segment_rows must be a multiple of 64");
        assert!(
            (1..=crate::paths::NUM_BUCKETS).contains(&self.path_buckets),
            "path_buckets must be in 1..={}",
            crate::paths::NUM_BUCKETS
        );
        self.service.validate();
    }
}

/// Durable-storage knobs: the on-disk root of sealed segments and the
/// budget for the imprint-resident cold-eviction policy.
///
/// The paper's size argument (§5: an imprint is a few percent of its
/// column) is what makes eviction worthwhile: with `root` set, every
/// sealed segment's columns, imprints and zonemaps are persisted under
/// `root/<table>/seg-*` and a restart recovers tables via
/// [`Catalog::open`](crate::Catalog::open); with a finite
/// `max_resident_data_bytes`, the maintenance planner drops the *data*
/// pages of the coldest persisted segments while their imprints stay
/// resident — counts that the imprint fully covers are answered without
/// touching disk, and only refinement faults data back in.
#[derive(Debug, Clone)]
pub struct StorageOptions {
    /// Directory holding one subdirectory per table. `None` (the default)
    /// disables persistence entirely: segments live in memory only and
    /// eviction never runs.
    pub root: Option<std::path::PathBuf>,
    /// Per-table budget of memory-resident sealed-segment data bytes. When
    /// a maintenance tick finds more resident data than this, it evicts
    /// persisted segments coldest-first until back under budget.
    /// `usize::MAX` (the default) never evicts.
    pub max_resident_data_bytes: usize,
    /// Whether [`Catalog::open`](crate::Catalog::open) reads persisted
    /// indexes back (leaving segment data evicted until first touched) or
    /// ignores them and rebuilds every index from the column data. `true`
    /// is the fast restart path; `false` is the rebuild baseline the
    /// `recovery` bench experiment compares against.
    pub load_indexes: bool,
}

impl Default for StorageOptions {
    fn default() -> Self {
        StorageOptions { root: None, max_resident_data_bytes: usize::MAX, load_indexes: true }
    }
}

/// Admission-control and batching knobs of the serving layer. The engine
/// itself only provides the batched evaluation entry point
/// ([`Table::query_batch`](crate::Table::query_batch)); these values are
/// read by the network front-end sitting on top of it.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Maximum requests queued for dispatch across all clients. An offer
    /// past this depth is *shed*: the client gets an immediate `BUSY`
    /// reply instead of unbounded queueing — overload degrades into
    /// explicit rejections, never into hangs or memory growth.
    pub queue_depth: usize,
    /// Maximum requests dispatched as one batch. Requests admitted in the
    /// same tick are grouped by table and evaluated as one shared morsel
    /// pass ([`Table::query_batch`](crate::Table::query_batch)): one
    /// segment sweep answers up to this many predicates.
    pub batch_max: usize,
    /// How long the dispatcher lingers after the first admitted request,
    /// in microseconds, letting concurrent arrivals join its batch. `0`
    /// dispatches immediately with whatever is queued — the
    /// request-at-a-time baseline when paired with `batch_max = 1`.
    pub batch_tick_micros: u64,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig { queue_depth: 1024, batch_max: 128, batch_tick_micros: 200 }
    }
}

impl ServiceConfig {
    /// The batching tick as a [`std::time::Duration`].
    pub fn batch_tick(&self) -> std::time::Duration {
        std::time::Duration::from_micros(self.batch_tick_micros)
    }

    /// Panics if the configuration is structurally invalid.
    pub fn validate(&self) {
        assert!(self.queue_depth > 0, "queue_depth must be positive");
        assert!(self.batch_max > 0, "batch_max must be positive");
    }
}

/// When the background planner rewrites a segment's index, and how it
/// merges small sealed segments into larger tiers.
#[derive(Debug, Clone)]
pub struct MaintenanceConfig {
    /// Rebuild when the imprint's mean bits-set fraction exceeds this
    /// (saturated vectors filter nothing; `ColumnImprints::saturation`).
    pub saturation_threshold: f64,
    /// Rebuild when this fraction of a segment's values landed in the
    /// binning's overflow bins at seal time (the §4.1 drift signal, which
    /// here means the inherited borders no longer fit the data).
    pub drift_threshold: f64,
    /// Rebuild when the observed false-positive rate of the imprint path —
    /// fraction of value comparisons that did *not* produce a match —
    /// stays above this.
    pub fp_threshold: f64,
    /// Ignore the false-positive signal until a segment has at least this
    /// many observed value comparisons (avoids reacting to noise).
    pub min_comparisons: u64,
    /// Tier fan-in of segment compaction: a run of this many adjacent
    /// sealed segments of the same size tier is merged into one segment
    /// (data concatenated, bins re-sampled once, imprint + zonemap
    /// rebuilt). Also the size ratio between tiers. Values below 2 disable
    /// compaction.
    pub tier_fanin: usize,
    /// Rows of a tier-0 segment for tier classification. `0` (the default)
    /// uses the table's [`EngineConfig::segment_rows`], which is what every
    /// freshly sealed segment holds.
    pub min_segment_rows: usize,
    /// Never merge segments into one larger than this many rows — the top
    /// tier, after which a segment only sees index rebuilds.
    pub max_segment_rows: usize,
    /// Input-data budget of one maintenance tick's compaction work, in
    /// bytes. Each tick merges at least one planned run (so tiering never
    /// stalls) but stops starting new merges once this many input bytes
    /// were consumed. `0` means unlimited.
    pub compaction_budget_bytes: usize,
}

impl Default for MaintenanceConfig {
    fn default() -> Self {
        MaintenanceConfig {
            saturation_threshold: 0.75,
            drift_threshold: 0.5,
            fp_threshold: 0.95,
            min_comparisons: 4096,
            tier_fanin: 4,
            min_segment_rows: 0,
            max_segment_rows: 1 << 22,
            compaction_budget_bytes: 64 << 20,
        }
    }
}
