//! Durable on-disk representation of sealed segments.
//!
//! Each table owns one directory under the storage root:
//!
//! ```text
//! <root>/<table>/
//!   MANIFEST                  # committed segment list (epoch, schema, dirs)
//!   seg-<base>-<uid>/         # one directory per sealed segment
//!     c0.col  c0.imp  c0.zone # per column: data, imprint, zonemap
//!     c1.col  ...
//! ```
//!
//! Every file reuses the checksummed [`colstore::storage`] framing, so a
//! flipped bit anywhere surfaces as a typed [`colstore::Error`] — never a
//! panic, never a silently wrong answer. Crash atomicity is rename-based
//! at two levels: a segment directory is fully written and fsynced under
//! a `.tmp` name before one `rename` publishes it, and the manifest —
//! the *only* commit point — is rewritten the same way. A crash between
//! the two leaves an orphan directory that the next
//! [`Catalog::open`](crate::Catalog::open) garbage-collects; it can
//! never leave a manifest pointing at a half-written segment.
//!
//! The manifest deliberately stays small (epoch + schema + one line per
//! segment): rewriting it whole per seal is cheaper than any
//! incremental-log scheme at the segment counts this engine sees, and it
//! makes recovery a single checksummed read.

use std::fs;
use std::io::{self, BufReader, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

use colstore::storage::{read_column, Reader, Writer};
use colstore::{Column, ColumnType, Error, Result, Scalar};

use crate::segment::SealedSegment;
use crate::table::ColumnDef;

/// Magic bytes identifying a table manifest file.
pub const MANIFEST_MAGIC: [u8; 4] = *b"CIMM";
/// Current manifest format version.
pub const MANIFEST_VERSION: u16 = 1;
/// File name of the manifest inside a table directory.
pub const MANIFEST_FILE: &str = "MANIFEST";

/// Data file of column `ci` inside a segment directory.
pub(crate) fn column_file(ci: usize) -> String {
    format!("c{ci}.col")
}

/// Imprint index file of column `ci`.
pub(crate) fn imprint_file(ci: usize) -> String {
    format!("c{ci}.imp")
}

/// Zonemap file of column `ci`.
pub(crate) fn zonemap_file(ci: usize) -> String {
    format!("c{ci}.zone")
}

/// Opens `path` buffered for reading.
pub(crate) fn open_file(path: &Path) -> Result<BufReader<fs::File>> {
    Ok(BufReader::new(fs::File::open(path)?))
}

/// Reads one whole checksummed column file.
pub(crate) fn read_column_file<T: Scalar>(path: &Path) -> Result<Column<T>> {
    read_column(&mut open_file(path)?)
}

/// One committed segment in a [`Manifest`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct SegmentEntry {
    /// First global row id the segment covers.
    pub base: u64,
    /// Rows in the segment.
    pub rows: u64,
    /// Segment directory name under the table directory.
    pub dir: String,
}

/// The committed durable state of one table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Manifest {
    /// Table epoch at commit time; a manifest write with a lower or equal
    /// epoch than the committed one is a stale racer and is skipped.
    pub epoch: u64,
    /// Column definitions, in column-index order.
    pub schema: Vec<ColumnDef>,
    /// Sealed segments in ascending base order.
    pub segments: Vec<SegmentEntry>,
}

/// What [`Catalog::open`](crate::Catalog::open) found and did.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Tables recovered.
    pub tables: usize,
    /// Sealed segments restored.
    pub segments: usize,
    /// Rows restored across all tables.
    pub rows: u64,
    /// Segment columns whose persisted indexes were read back (data left
    /// evicted on disk).
    pub indexes_recovered: usize,
    /// Segment columns whose indexes were rebuilt from the column data
    /// (missing/corrupt index files, or `load_indexes` off).
    pub indexes_rebuilt: usize,
    /// Wall nanoseconds spent reading indexes back.
    pub recover_nanos: u64,
    /// Wall nanoseconds spent rebuilding indexes from data.
    pub rebuild_nanos: u64,
    /// Orphan segment directories and stale temp files removed.
    pub orphans_removed: usize,
}

/// The durable side of one table: its directory, the committed manifest
/// epoch, and a uid counter making segment-directory names unique across
/// replacements of the same base row.
#[derive(Debug)]
pub(crate) struct TableStore {
    /// `<storage root>/<table>`.
    root: PathBuf,
    /// Epoch of the last committed manifest (lock class `table.store`).
    /// The lock also serializes the write-tmp/rename pair itself.
    manifest: Mutex<u64>,
    uid: AtomicU64,
}

impl TableStore {
    /// Creates the table directory and commits an empty manifest, marking
    /// the directory as a recoverable table.
    pub(crate) fn create(root: &Path, name: &str, schema: &[ColumnDef]) -> Result<TableStore> {
        let dir = root.join(name);
        fs::create_dir_all(&dir)?;
        let store = TableStore { root: dir, manifest: Mutex::new(0), uid: AtomicU64::new(0) };
        store.commit_manifest(0, schema, &[])?;
        Ok(store)
    }

    /// Opens an existing table directory, reading its committed manifest.
    /// The uid counter resumes past every segment directory already on
    /// disk (committed or orphaned), so new names never collide.
    pub(crate) fn open(root: &Path, name: &str) -> Result<(TableStore, Manifest)> {
        let dir = root.join(name);
        let manifest = read_manifest(&dir.join(MANIFEST_FILE))?;
        let mut max_uid = 0u64;
        for entry in fs::read_dir(&dir)? {
            if let Some(uid) = dir_uid(&entry?.file_name().to_string_lossy()) {
                max_uid = max_uid.max(uid + 1);
            }
        }
        let store = TableStore {
            root: dir,
            manifest: Mutex::new(manifest.epoch),
            uid: AtomicU64::new(max_uid),
        };
        Ok((store, manifest))
    }

    /// The directory of segment `name`.
    pub(crate) fn segment_dir(&self, name: &str) -> PathBuf {
        self.root.join(name)
    }

    /// Writes `seg` as a fresh segment directory: every column's data,
    /// imprint and zonemap into a `.tmp` directory, fsynced, then one
    /// rename publishing it. On success the segment is marked durable
    /// (directory name + per-column data files pinned). A segment that is
    /// already durable — a recovered one — is left as is.
    pub(crate) fn persist_segment(&self, seg: &SealedSegment) -> Result<()> {
        if seg.durable_name().is_some() {
            return Ok(());
        }
        // ordering: uniqueness is all that matters for the uid counter;
        // the value guards no other memory.
        let uid = self.uid.fetch_add(1, Ordering::Relaxed);
        let name = format!("seg-{:012}-{uid}", seg.base());
        let tmp = self.root.join(format!("{name}.tmp"));
        // A leftover from a crashed attempt cannot exist under this name
        // (uids are fresh), but be thorough.
        let _ = fs::remove_dir_all(&tmp);
        fs::create_dir_all(&tmp)?;
        for (ci, col) in seg.columns().iter().enumerate() {
            write_file(&tmp.join(column_file(ci)), |w| col.write_data_to(w))?;
            write_file(&tmp.join(imprint_file(ci)), |w| col.write_index_to(w))?;
            write_file(&tmp.join(zonemap_file(ci)), |w| col.write_zonemap_to(w))?;
        }
        let dir = self.root.join(&name);
        fs::rename(&tmp, &dir)?;
        sync_dir(&self.root)?;
        seg.mark_durable(&name, &dir);
        Ok(())
    }

    /// Commits a manifest at `epoch` covering `segments`, unless a later
    /// (or equal) epoch was already committed — the swap that produced a
    /// stale list lost its race, and the winner's manifest stands. The
    /// rename of `MANIFEST.tmp` over `MANIFEST` is the commit point.
    pub(crate) fn commit_manifest(
        &self,
        epoch: u64,
        schema: &[ColumnDef],
        segments: &[SegmentEntry],
    ) -> Result<()> {
        let mut last = self.manifest.lock().unwrap_or_else(PoisonError::into_inner);
        if epoch > 0 && epoch <= *last {
            return Ok(());
        }
        let mut w = Writer::new();
        w.put_u16(MANIFEST_VERSION);
        w.put_u16(0);
        w.put_u64(epoch);
        w.put_u64(schema.len() as u64);
        for def in schema {
            w.put_u32(def.name.len() as u32);
            w.put_bytes(def.name.as_bytes());
            w.put_u8(def.ty.tag());
        }
        w.put_u64(segments.len() as u64);
        for seg in segments {
            w.put_u64(seg.base);
            w.put_u64(seg.rows);
            w.put_u32(seg.dir.len() as u32);
            w.put_bytes(seg.dir.as_bytes());
        }
        let tmp = self.root.join(format!("{MANIFEST_FILE}.tmp"));
        write_file(&tmp, |mut out| w.finish(&MANIFEST_MAGIC, &mut out))?;
        fs::rename(&tmp, self.root.join(MANIFEST_FILE))?;
        sync_dir(&self.root)?;
        *last = epoch;
        Ok(())
    }

    /// Removes everything in the table directory that the committed
    /// manifest does not reference: orphaned segment directories (their
    /// manifest write lost a race or crashed) and stale `.tmp` files.
    /// Only called from [`Catalog::open`](crate::Catalog::open), before
    /// any query runs — at runtime, pinned readers may still hold
    /// segments whose directories a racing manifest orphaned.
    pub(crate) fn gc(&self, manifest: &Manifest) -> Result<usize> {
        let mut removed = 0;
        for entry in fs::read_dir(&self.root)? {
            let entry = entry?;
            let name = entry.file_name().to_string_lossy().into_owned();
            if name == MANIFEST_FILE {
                continue;
            }
            if manifest.segments.iter().any(|s| s.dir == name) {
                continue;
            }
            let path = entry.path();
            if path.is_dir() {
                fs::remove_dir_all(&path)?;
            } else {
                fs::remove_file(&path)?;
            }
            removed += 1;
        }
        Ok(removed)
    }

    /// Deletes the table's entire durable state (`drop_table`).
    pub(crate) fn destroy(&self) -> Result<()> {
        fs::remove_dir_all(&self.root)?;
        Ok(())
    }
}

/// The uid suffix of a `seg-<base>-<uid>[.tmp]` directory name.
fn dir_uid(name: &str) -> Option<u64> {
    let rest = name.strip_prefix("seg-")?;
    let rest = rest.strip_suffix(".tmp").unwrap_or(rest);
    rest.rsplit('-').next()?.parse().ok()
}

/// Writes one file through `fill`, then flushes and fsyncs it — every
/// durable byte hits the disk before the enclosing rename can publish it.
fn write_file(path: &Path, fill: impl FnOnce(&mut dyn Write) -> Result<()>) -> Result<()> {
    let file = fs::File::create(path)?;
    let mut out = io::BufWriter::new(file);
    fill(&mut out)?;
    out.flush()?;
    out.get_ref().sync_all()?;
    Ok(())
}

/// Fsyncs a directory so a just-renamed entry survives power loss.
fn sync_dir(dir: &Path) -> Result<()> {
    fs::File::open(dir)?.sync_all()?;
    Ok(())
}

/// Reads and validates a manifest written by
/// [`TableStore::commit_manifest`].
pub(crate) fn read_manifest(path: &Path) -> Result<Manifest> {
    let mut r = Reader::open(&MANIFEST_MAGIC, &mut open_file(path)?)?;
    let version = r.get_u16()?;
    if version != MANIFEST_VERSION {
        return Err(Error::Corrupt(format!("unsupported manifest version {version}")));
    }
    let _pad = r.get_u16()?;
    let epoch = r.get_u64()?;
    // Minimal per-entry footprint bounds the allocation before reading
    // variable-length names (satellite of the `read_column` guard).
    let n_cols = r.get_count(5, "schema column")?;
    let mut schema = Vec::with_capacity(n_cols);
    for _ in 0..n_cols {
        let name = read_name(&mut r, "column")?;
        let tag = r.get_u8()?;
        let ty = ColumnType::from_tag(tag)
            .ok_or_else(|| Error::Corrupt(format!("unknown type tag {tag}")))?;
        schema.push(ColumnDef { name, ty });
    }
    let n_segs = r.get_count(20, "segment entry")?;
    let mut segments = Vec::with_capacity(n_segs);
    let mut next_base = 0u64;
    for _ in 0..n_segs {
        let base = r.get_u64()?;
        let rows = r.get_u64()?;
        let dir = read_name(&mut r, "segment directory")?;
        if base != next_base {
            return Err(Error::Corrupt(format!(
                "segment {dir} starts at row {base}, expected {next_base}"
            )));
        }
        next_base = base
            .checked_add(rows)
            .ok_or_else(|| Error::Corrupt("segment row range overflows".into()))?;
        segments.push(SegmentEntry { base, rows, dir });
    }
    if r.remaining() != 0 {
        return Err(Error::Corrupt(format!("{} trailing bytes", r.remaining())));
    }
    Ok(Manifest { epoch, schema, segments })
}

/// One length-prefixed UTF-8 name, length-guarded against the remaining
/// payload before allocating.
fn read_name(r: &mut Reader, what: &str) -> Result<String> {
    let len = r.get_u32()? as usize;
    if len > r.remaining() {
        return Err(Error::Corrupt(format!(
            "{what} name of {len} bytes exceeds {} remaining",
            r.remaining()
        )));
    }
    String::from_utf8(r.get_bytes(len)?.to_vec())
        .map_err(|_| Error::Corrupt(format!("{what} name is not UTF-8")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn defs() -> Vec<ColumnDef> {
        vec![
            ColumnDef { name: "id".into(), ty: ColumnType::U64 },
            ColumnDef { name: "price".into(), ty: ColumnType::F64 },
        ]
    }

    fn temp_root(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("imprints-persist-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn manifest_roundtrip_and_epoch_ordering() {
        let root = temp_root("manifest");
        let store = TableStore::create(&root, "t", &defs()).unwrap();
        let segs = vec![
            SegmentEntry { base: 0, rows: 64, dir: "seg-000000000000-0".into() },
            SegmentEntry { base: 64, rows: 128, dir: "seg-000000000064-1".into() },
        ];
        store.commit_manifest(3, &defs(), &segs).unwrap();
        // A stale racer (equal or lower epoch) is skipped, not committed.
        store.commit_manifest(3, &defs(), &segs[..1]).unwrap();
        store.commit_manifest(2, &defs(), &[]).unwrap();
        let (_, m) = TableStore::open(&root, "t").unwrap();
        assert_eq!(m.epoch, 3);
        assert_eq!(m.schema, defs());
        assert_eq!(m.segments, segs);
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn manifest_bitflip_never_panics() {
        let root = temp_root("bitflip");
        let store = TableStore::create(&root, "t", &defs()).unwrap();
        let segs = vec![SegmentEntry { base: 0, rows: 4096, dir: "seg-000000000000-0".into() }];
        store.commit_manifest(1, &defs(), &segs).unwrap();
        let path = root.join("t").join(MANIFEST_FILE);
        let clean = fs::read(&path).unwrap();
        for i in 0..clean.len() {
            let mut bytes = clean.clone();
            bytes[i] ^= 0x10;
            fs::write(&path, &bytes).unwrap();
            // Every flipped bit must yield a typed error, never a panic or
            // a silently accepted manifest.
            read_manifest(&path).unwrap_err();
        }
        fs::write(&path, &clean).unwrap();
        assert_eq!(read_manifest(&path).unwrap().segments, segs);
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn manifest_gap_in_row_ranges_rejected() {
        let root = temp_root("gap");
        let store = TableStore::create(&root, "t", &defs()).unwrap();
        let segs = vec![
            SegmentEntry { base: 0, rows: 64, dir: "a".into() },
            SegmentEntry { base: 128, rows: 64, dir: "b".into() },
        ];
        store.commit_manifest(1, &defs(), &segs).unwrap();
        let err = read_manifest(&root.join("t").join(MANIFEST_FILE)).unwrap_err();
        assert!(matches!(err, Error::Corrupt(_)), "got {err}");
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn uid_counter_resumes_past_existing_dirs() {
        assert_eq!(dir_uid("seg-000000000000-17"), Some(17));
        assert_eq!(dir_uid("seg-000000000064-3.tmp"), Some(3));
        assert_eq!(dir_uid("MANIFEST"), None);
        assert_eq!(dir_uid("seg-junk-x"), None);
    }
}
