//! Incremental tail imprints over the open write head.
//!
//! Sealed segments carry full secondary indexes, but the *open* segment —
//! the write head — historically answered queries by scanning its buffers
//! linearly under the open read lock, up to a whole segment of rows per
//! predicate. This module gives each open column buffer an **updatable
//! imprint** built on the §4.1 append support of
//! [`ColumnImprints::append`](imprints::ColumnImprints::append): appends
//! extend the imprint vectors without readjusting bin borders, so the
//! index grows in O(new rows) while the open write lock is already held,
//! and queries skip non-qualifying cachelines of the write head exactly
//! like they do on sealed segments.
//!
//! Lifecycle (driven by [`Table`](crate::table::Table)):
//!
//! 1. Below [`EngineConfig::tail_index_min_rows`](crate::EngineConfig)
//!    open rows, no tail index exists — a tiny head is cheaper to scan
//!    than to index, and the bin sample would be too thin to
//!    discriminate.
//! 2. Crossing the threshold, [`AnyTailIndex::build`] samples the rows
//!    accumulated so far — real data, not guesses — and every subsequent
//!    append goes through [`AnyTailIndex::extend`].
//! 3. When appended data drifts off the sampled domain or saturates the
//!    vectors ([`AnyTailIndex::needs_rebuild`], the paper's §4.1 drift
//!    signal), [`AnyTailIndex::rebuild`] re-samples over the current
//!    buffer — bounded work, at most one segment of rows.
//! 4. At seal the tail index is discarded: the sealed segment builds its
//!    real per-segment imprint (with binning inheritance), which the tail
//!    index never tries to replace.
//!
//! Unlike sealed segment columns — whose N-path, selectivity-bucketed
//! [`PathChooser`](crate::paths::PathChooser) arbitrates between imprint,
//! zonemap, scan and WAH — the write head deliberately stays
//! imprint-only: its buffer mutates under the open write lock on every
//! append, so any additional per-head structure (zonemap, WAH vectors)
//! would need the same incremental-extend treatment for marginal gain on
//! at most one segment of rows, and cost-model state learned on a buffer
//! that is discarded at seal would never amortize.

use colstore::relation::AnyColumn;
use colstore::{AccessStats, IdList};
use imprints::relation_index::{ValueRange, ValueSet};
use imprints::{query, ColumnImprints};

/// The tail imprint of one open column buffer, of whichever scalar type
/// the buffer holds (mirrors [`AnyColumn`]'s variants).
#[derive(Debug, Clone)]
pub enum AnyTailIndex {
    /// Tail imprint over an `i8` buffer.
    I8(ColumnImprints<i8>),
    /// Tail imprint over a `u8` buffer.
    U8(ColumnImprints<u8>),
    /// Tail imprint over an `i16` buffer.
    I16(ColumnImprints<i16>),
    /// Tail imprint over a `u16` buffer.
    U16(ColumnImprints<u16>),
    /// Tail imprint over an `i32` buffer.
    I32(ColumnImprints<i32>),
    /// Tail imprint over a `u32` buffer.
    U32(ColumnImprints<u32>),
    /// Tail imprint over an `i64` buffer.
    I64(ColumnImprints<i64>),
    /// Tail imprint over a `u64` buffer.
    U64(ColumnImprints<u64>),
    /// Tail imprint over an `f32` buffer.
    F32(ColumnImprints<f32>),
    /// Tail imprint over an `f64` buffer.
    F64(ColumnImprints<f64>),
}

/// Dispatches on the (tail index, column buffer) pair, which are the same
/// variant by construction — the table builds each tail from its own
/// buffer and never mixes columns.
macro_rules! tail_pair {
    ($idx:expr, $buf:expr, ($i:ident, $c:ident) => $body:expr) => {
        match ($idx, $buf) {
            (AnyTailIndex::I8($i), AnyColumn::I8($c)) => $body,
            (AnyTailIndex::U8($i), AnyColumn::U8($c)) => $body,
            (AnyTailIndex::I16($i), AnyColumn::I16($c)) => $body,
            (AnyTailIndex::U16($i), AnyColumn::U16($c)) => $body,
            (AnyTailIndex::I32($i), AnyColumn::I32($c)) => $body,
            (AnyTailIndex::U32($i), AnyColumn::U32($c)) => $body,
            (AnyTailIndex::I64($i), AnyColumn::I64($c)) => $body,
            (AnyTailIndex::U64($i), AnyColumn::U64($c)) => $body,
            (AnyTailIndex::F32($i), AnyColumn::F32($c)) => $body,
            (AnyTailIndex::F64($i), AnyColumn::F64($c)) => $body,
            _ => unreachable!("tail index type mismatch with its column buffer"),
        }
    };
}

macro_rules! tail_dispatch {
    ($any:expr, $i:ident => $body:expr) => {
        match $any {
            AnyTailIndex::I8($i) => $body,
            AnyTailIndex::U8($i) => $body,
            AnyTailIndex::I16($i) => $body,
            AnyTailIndex::U16($i) => $body,
            AnyTailIndex::I32($i) => $body,
            AnyTailIndex::U32($i) => $body,
            AnyTailIndex::I64($i) => $body,
            AnyTailIndex::U64($i) => $body,
            AnyTailIndex::F32($i) => $body,
            AnyTailIndex::F64($i) => $body,
        }
    };
}

impl AnyTailIndex {
    /// Builds a tail imprint over `buf`'s current contents, sampling bin
    /// borders from the rows the head has actually accumulated.
    pub fn build(buf: &AnyColumn) -> AnyTailIndex {
        macro_rules! arm {
            ($($v:ident),+) => {
                match buf {
                    $(AnyColumn::$v(c) => AnyTailIndex::$v(ColumnImprints::build(c)),)+
                }
            };
        }
        arm!(I8, U8, I16, U16, I32, U32, I64, U64, F32, F64)
    }

    /// Extends the imprint for the rows `from..buf.len()` that the caller
    /// just appended to `buf` (§4.1: existing vectors are never touched).
    /// Must run under the same open write lock as the buffer append so
    /// readers never observe index and buffer out of sync.
    pub fn extend(&mut self, buf: &AnyColumn, from: usize) {
        tail_pair!(self, buf, (i, c) => {
            i.append(&c.values()[from..]);
        });
    }

    /// Rows covered by the tail imprint (must equal the buffer length
    /// outside the open write critical section).
    pub fn rows(&self) -> usize {
        tail_dispatch!(self, i => i.rows())
    }

    /// Whether appended rows drifted off the sampled domain enough that
    /// the imprint stopped discriminating — the O(1) §4.1 overflow-drift
    /// half of core's rebuild heuristic only. The saturation sweep of
    /// [`ColumnImprints::needs_rebuild`] is deliberately *not* consulted:
    /// this check runs once per append batch under the open write lock,
    /// where an O(stored vectors) popcount per chunk would make trickle
    /// appends quadratic in head size and stall concurrent readers.
    pub fn needs_rebuild(&self) -> bool {
        tail_dispatch!(self, i => i.append_drift_excessive())
    }

    /// Re-samples bin borders over the buffer's current contents —
    /// bounded by one segment of rows, run under the open write lock.
    pub fn rebuild(&mut self, buf: &AnyColumn) {
        tail_pair!(self, buf, (i, c) => {
            *i = i.rebuild(c);
        });
    }

    /// Index bytes of the tail imprint (storage accounting).
    pub fn size_bytes(&self) -> usize {
        tail_dispatch!(self, i => i.size_bytes())
    }

    /// Evaluates `range` over the write head through the imprint
    /// (Algorithm 3), returning matching buffer-local row ids. Checked
    /// head cachelines are weeded by the table's refinement kernel
    /// ([`imprints::simd`]) exactly like sealed-segment lines, so the
    /// tail path's false-positive cost rides the same SWAR/scalar switch.
    pub fn evaluate(
        &self,
        buf: &AnyColumn,
        range: &ValueRange,
        kernel: imprints::simd::RefineKernel,
    ) -> (IdList, AccessStats) {
        tail_pair!(self, buf, (i, c) => {
            let pred = range.to_predicate().expect("predicate validated against schema");
            let (ids, stats) = query::evaluate_with_kernel(i, c, &pred, kernel);
            (ids, stats.access)
        })
    }

    /// Evaluates a whole [`ValueSet`] over the write head: the union of
    /// each term's imprint evaluation. IN-lists and OR arms ride the tail
    /// imprint term by term, so the head path never falls back to a
    /// linear scan just because a predicate has more than one interval.
    pub fn evaluate_set(
        &self,
        buf: &AnyColumn,
        set: &ValueSet,
        kernel: imprints::simd::RefineKernel,
    ) -> (IdList, AccessStats) {
        let mut stats = AccessStats::default();
        let mut acc = IdList::new();
        for term in &set.terms {
            let (ids, s) = self.evaluate(buf, term, kernel);
            stats.merge(&s);
            acc = acc.union(&ids);
        }
        (acc, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use colstore::Value;

    fn oracle(values: &[i64], lo: i64, hi: i64) -> Vec<u64> {
        values
            .iter()
            .enumerate()
            .filter(|(_, v)| (lo..=hi).contains(*v))
            .map(|(i, _)| i as u64)
            .collect()
    }

    #[test]
    fn build_extend_evaluate_matches_oracle() {
        let mut values: Vec<i64> = (0..3000).map(|i| (i * 17) % 900).collect();
        let buf = AnyColumn::I64(values.iter().copied().collect());
        let mut tail = AnyTailIndex::build(&buf);
        assert_eq!(tail.rows(), 3000);
        // Append in odd-sized batches, extending the tail index like the
        // table's append path does.
        let mut buf = buf;
        for batch in [7usize, 501, 64] {
            let from = values.len();
            let extra: Vec<i64> = (0..batch).map(|i| ((from + i) as i64 * 13) % 900).collect();
            values.extend_from_slice(&extra);
            buf.extend_from_range(&AnyColumn::I64(extra.into_iter().collect()), 0..batch).unwrap();
            tail.extend(&buf, from);
            assert_eq!(tail.rows(), values.len());
        }
        for (lo, hi) in [(0, 50), (100, 899), (890, 2000), (-5, -1)] {
            let range = ValueRange::between(Value::I64(lo), Value::I64(hi));
            let (ids, _) = tail.evaluate(&buf, &range, imprints::simd::RefineKernel::Auto);
            assert_eq!(ids.as_slice(), oracle(&values, lo, hi).as_slice(), "[{lo}, {hi}]");
        }
    }

    #[test]
    fn drifted_appends_trigger_rebuild_and_stay_correct() {
        let base: Vec<i64> = (0..2048).collect();
        let mut buf = AnyColumn::I64(base.iter().copied().collect());
        let mut tail = AnyTailIndex::build(&buf);
        // Appends far outside the sampled domain: overflow drift.
        let shifted: Vec<i64> = (0..2048).map(|i| 1_000_000 + i).collect();
        let from = buf.len();
        buf.extend_from_range(&AnyColumn::I64(shifted.iter().copied().collect()), 0..shifted.len())
            .unwrap();
        tail.extend(&buf, from);
        assert!(tail.needs_rebuild(), "wholesale domain shift must trip the drift heuristic");
        tail.rebuild(&buf);
        assert!(!tail.needs_rebuild());
        let all: Vec<i64> = base.iter().chain(&shifted).copied().collect();
        let range = ValueRange::between(Value::I64(1_000_100), Value::I64(1_000_200));
        let (ids, stats) = tail.evaluate(&buf, &range, imprints::simd::RefineKernel::Auto);
        assert_eq!(ids.as_slice(), oracle(&all, 1_000_100, 1_000_200).as_slice());
        assert!(stats.lines_skipped > 0, "rebuilt borders must let the head skip lines");
    }

    #[test]
    fn skips_cachelines_on_clustered_head() {
        let values: Vec<i64> = (0..32_768).collect();
        let buf = AnyColumn::I64(values.iter().copied().collect());
        let tail = AnyTailIndex::build(&buf);
        let range = ValueRange::between(Value::I64(100), Value::I64(200));
        let (ids, stats) = tail.evaluate(&buf, &range, imprints::simd::RefineKernel::Auto);
        assert_eq!(ids.as_slice(), oracle(&values, 100, 200).as_slice());
        assert!(
            stats.value_comparisons < values.len() as u64 / 10,
            "tail imprint must not degenerate into a scan ({} comparisons)",
            stats.value_comparisons
        );
    }
}
