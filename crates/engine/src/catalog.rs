//! The relation catalog: named tables behind one lock.

use std::collections::HashMap;
use std::sync::{Arc, RwLock};

use colstore::{ColumnType, Error, Result};

use crate::config::EngineConfig;
use crate::table::Table;

/// A concurrent registry of [`Table`]s.
#[derive(Default)]
pub struct Catalog {
    tables: RwLock<HashMap<String, Arc<Table>>>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Creates and registers a table.
    pub fn create_table(
        &self,
        name: &str,
        schema: &[(&str, ColumnType)],
        cfg: EngineConfig,
    ) -> Result<Arc<Table>> {
        let table = Arc::new(Table::new(name, schema, cfg)?);
        let mut tables = self.tables.write().expect("catalog lock");
        if tables.contains_key(name) {
            return Err(Error::Mismatch(format!("table {name:?} already exists")));
        }
        tables.insert(name.to_string(), Arc::clone(&table));
        Ok(table)
    }

    /// Looks up a table by name.
    pub fn table(&self, name: &str) -> Result<Arc<Table>> {
        self.tables
            .read()
            .expect("catalog lock")
            .get(name)
            .cloned()
            .ok_or_else(|| Error::NotFound(format!("table {name:?}")))
    }

    /// Unregisters a table, returning whether it existed. Queries holding
    /// the `Arc` finish normally; the data is freed with the last clone.
    pub fn drop_table(&self, name: &str) -> bool {
        self.tables.write().expect("catalog lock").remove(name).is_some()
    }

    /// Registered table names, sorted.
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> =
            self.tables.read().expect("catalog lock").keys().cloned().collect();
        names.sort();
        names
    }

    /// Snapshot of all tables (for the maintenance planner).
    pub fn tables(&self) -> Vec<Arc<Table>> {
        self.tables.read().expect("catalog lock").values().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_lookup_drop() {
        let cat = Catalog::new();
        cat.create_table("a", &[("x", ColumnType::I32)], EngineConfig::default()).unwrap();
        cat.create_table("b", &[("y", ColumnType::F64)], EngineConfig::default()).unwrap();
        assert!(cat.create_table("a", &[("x", ColumnType::I32)], EngineConfig::default()).is_err());
        assert_eq!(cat.table_names(), vec!["a".to_string(), "b".to_string()]);
        assert!(cat.table("a").is_ok());
        assert!(cat.table("zz").is_err());
        assert!(cat.drop_table("a"));
        assert!(!cat.drop_table("a"));
        assert_eq!(cat.tables().len(), 1);
    }
}
