//! The relation catalog: named tables behind one lock.

use std::collections::HashMap;
use std::fs;
use std::sync::{Arc, RwLock};
use std::time::Instant;

use colstore::{ColumnType, Error, Result};

use crate::config::EngineConfig;
use crate::persist::{RecoveryReport, TableStore, MANIFEST_FILE};
use crate::segment::SealedSegment;
use crate::table::Table;

/// A concurrent registry of [`Table`]s.
#[derive(Default)]
pub struct Catalog {
    tables: RwLock<HashMap<String, Arc<Table>>>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Creates and registers a table.
    pub fn create_table(
        &self,
        name: &str,
        schema: &[(&str, ColumnType)],
        cfg: EngineConfig,
    ) -> Result<Arc<Table>> {
        let table = Arc::new(Table::new(name, schema, cfg)?);
        let mut tables = self.tables.write().expect("catalog lock");
        if tables.contains_key(name) {
            return Err(Error::Mismatch(format!("table {name:?} already exists")));
        }
        tables.insert(name.to_string(), Arc::clone(&table));
        Ok(table)
    }

    /// Looks up a table by name.
    pub fn table(&self, name: &str) -> Result<Arc<Table>> {
        self.tables
            .read()
            .expect("catalog lock")
            .get(name)
            .cloned()
            .ok_or_else(|| Error::NotFound(format!("table {name:?}")))
    }

    /// Unregisters a table, returning whether it existed. Queries holding
    /// the `Arc` finish normally; the data is freed with the last clone.
    /// A durable table's on-disk state is deleted with it — an in-flight
    /// query refining into an *evicted* segment of the dropped table may
    /// therefore fail, which matches dropping semantics elsewhere.
    pub fn drop_table(&self, name: &str) -> bool {
        let removed = self.tables.write().expect("catalog lock").remove(name);
        match removed {
            Some(table) => {
                if let Some(store) = table.store() {
                    let _ = store.destroy();
                }
                true
            }
            None => false,
        }
    }

    /// Seals every table's non-empty open write head (see
    /// [`Table::flush_open`]) — the clean-shutdown hook making all
    /// appended rows durable. Returns how many tables sealed a head.
    pub fn flush(&self) -> usize {
        self.tables().iter().filter(|t| t.flush_open()).count()
    }

    /// Recovers a catalog from the durable state under
    /// [`StorageOptions::root`](crate::StorageOptions::root): every
    /// subdirectory with a committed manifest becomes a table, its sealed
    /// segments restored in manifest order. Per segment column, the
    /// persisted imprint and zonemap are read back with the data left
    /// **evicted** on disk (with
    /// [`load_indexes`](crate::StorageOptions::load_indexes), the fast
    /// path) or the checksummed column data is read and the indexes
    /// rebuilt (the fallback for missing or damaged index files — data is
    /// ground truth, indexes are derived state). Orphan segment
    /// directories from crashed or lost-race writes are removed. The
    /// report says which path each column took and what it cost.
    pub fn open(cfg: &EngineConfig) -> Result<(Catalog, RecoveryReport)> {
        cfg.validate();
        let root = cfg
            .storage
            .root
            .as_deref()
            .ok_or_else(|| Error::Mismatch("Catalog::open needs storage.root set".into()))?;
        fs::create_dir_all(root)?;
        let catalog = Catalog::new();
        let mut report = RecoveryReport::default();
        let mut names: Vec<String> = Vec::new();
        for entry in fs::read_dir(root)? {
            let entry = entry?;
            if entry.file_type()?.is_dir() && entry.path().join(MANIFEST_FILE).is_file() {
                names.push(entry.file_name().to_string_lossy().into_owned());
            }
        }
        names.sort();
        for name in names {
            let (store, manifest) = TableStore::open(root, &name)?;
            let types: Vec<ColumnType> = manifest.schema.iter().map(|d| d.ty).collect();
            let mut segments = Vec::with_capacity(manifest.segments.len());
            for entry in &manifest.segments {
                let dir = store.segment_dir(&entry.dir);
                let t0 = Instant::now();
                let (seg, recovered, rebuilt) = SealedSegment::recover(
                    entry.base,
                    entry.rows as usize,
                    &types,
                    &entry.dir,
                    &dir,
                    cfg,
                    cfg.storage.load_indexes,
                )?;
                let nanos = t0.elapsed().as_nanos() as u64;
                // A mixed segment (some columns recovered, some rebuilt)
                // bills its time to the dominant path.
                if rebuilt > recovered {
                    report.rebuild_nanos += nanos;
                } else {
                    report.recover_nanos += nanos;
                }
                report.indexes_recovered += recovered;
                report.indexes_rebuilt += rebuilt;
                report.rows += entry.rows;
                segments.push(Arc::new(seg));
            }
            report.segments += segments.len();
            report.orphans_removed += store.gc(&manifest)?;
            report.tables += 1;
            let table = Arc::new(Table::recover(
                &name,
                manifest.schema,
                cfg.clone(),
                store,
                segments,
                manifest.epoch,
            ));
            catalog.tables.write().expect("catalog lock").insert(name, table);
        }
        // Table directories without a manifest are left untouched: with no
        // manifest there is no way to tell a half-created table from
        // foreign data, and the manifest is written at create time, so
        // that window is one `create_table` call wide.
        Ok((catalog, report))
    }

    /// Registered table names, sorted.
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> =
            self.tables.read().expect("catalog lock").keys().cloned().collect();
        names.sort();
        names
    }

    /// Snapshot of all tables (for the maintenance planner).
    pub fn tables(&self) -> Vec<Arc<Table>> {
        self.tables.read().expect("catalog lock").values().cloned().collect()
    }

    /// Aggregate storage statistics across all tables — the compaction
    /// experiment's before/after metric and a cheap health probe for
    /// operators. Per table, the segment count and index bytes come from
    /// one frozen sealed-list snapshot, so they can never pair a pre-swap
    /// count with post-swap bytes even while compaction churns.
    pub fn storage_stats(&self) -> StorageStats {
        let mut stats = StorageStats::default();
        for table in self.tables() {
            let sealed = table.sealed_snapshot();
            stats.tables += 1;
            stats.sealed_segments += sealed.len();
            for seg in sealed.iter() {
                let mut evicted = false;
                for col in seg.columns() {
                    stats.index_bytes += col.index_bytes();
                    stats.wah_bytes += col.wah_bytes();
                    if col.data_resident() {
                        stats.data_bytes_resident += col.data_bytes();
                    } else {
                        stats.data_bytes_evicted += col.data_bytes();
                        evicted = true;
                    }
                    stats.faulted_bytes += col.faulted_bytes();
                }
                if evicted {
                    stats.evicted_segments += 1;
                }
            }
            stats.rows += table.row_count();
            stats.persist_errors += table.persist_errors();
        }
        stats
    }
}

/// Catalog-wide storage totals (see [`Catalog::storage_stats`]).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct StorageStats {
    /// Registered tables.
    pub tables: usize,
    /// Sealed segments across all tables.
    pub sealed_segments: usize,
    /// Bytes of secondary-index structures across all sealed segments
    /// (imprints + zonemaps + built WAH bitmaps).
    pub index_bytes: usize,
    /// Of [`StorageStats::index_bytes`], the bytes of lazily built WAH
    /// bitmap paths (0 when the WAH path is disabled or no column has
    /// built one within budget yet).
    pub wah_bytes: usize,
    /// Visible rows across all tables.
    pub rows: u64,
    /// Sealed-segment data bytes currently memory-resident.
    pub data_bytes_resident: usize,
    /// Sealed-segment data bytes evicted to disk (imprints stay resident).
    pub data_bytes_evicted: usize,
    /// Sealed segments with at least one evicted column.
    pub evicted_segments: usize,
    /// Data bytes faulted back in from disk across all segments.
    pub faulted_bytes: u64,
    /// Failed persistence attempts across all tables (durability degraded
    /// to in-memory availability; 0 on a healthy system).
    pub persist_errors: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_lookup_drop() {
        let cat = Catalog::new();
        cat.create_table("a", &[("x", ColumnType::I32)], EngineConfig::default()).unwrap();
        cat.create_table("b", &[("y", ColumnType::F64)], EngineConfig::default()).unwrap();
        assert!(cat.create_table("a", &[("x", ColumnType::I32)], EngineConfig::default()).is_err());
        assert_eq!(cat.table_names(), vec!["a".to_string(), "b".to_string()]);
        assert!(cat.table("a").is_ok());
        assert!(cat.table("zz").is_err());
        assert!(cat.drop_table("a"));
        assert!(!cat.drop_table("a"));
        assert_eq!(cat.tables().len(), 1);
    }

    #[test]
    fn storage_stats_aggregate_tables() {
        use colstore::relation::AnyColumn;
        let cat = Catalog::new();
        let cfg = EngineConfig { segment_rows: 128, ..Default::default() };
        let t = cat.create_table("s", &[("x", ColumnType::I64)], cfg).unwrap();
        t.append_batch(vec![AnyColumn::I64((0..300).collect())]).unwrap();
        let stats = cat.storage_stats();
        assert_eq!(stats.tables, 1);
        assert_eq!(stats.sealed_segments, 2);
        assert_eq!(stats.rows, 300);
        assert!(stats.index_bytes > 0);
        assert_eq!(stats.wah_bytes, 0, "wah is disabled by default");
    }

    #[test]
    fn storage_stats_account_lazily_built_wah() {
        use colstore::relation::AnyColumn;
        use colstore::Value;
        use imprints::relation_index::ValueRange;
        let cat = Catalog::new();
        let cfg =
            EngineConfig { segment_rows: 1024, wah_budget_bytes: usize::MAX, ..Default::default() };
        let t = cat.create_table("w", &[("x", ColumnType::I64)], cfg).unwrap();
        let vals: Vec<i64> = (0..2048).map(|i| i % 50).collect();
        t.append_batch(vec![AnyColumn::I64(vals.into_iter().collect())]).unwrap();
        let before = cat.storage_stats();
        assert_eq!(before.wah_bytes, 0, "nothing built until the chooser explores wah");
        // Enough queries that every segment's bootstrap reaches the WAH
        // slot and lazily builds the bitmap.
        let pred = [("x", ValueRange::between(Value::I64(10), Value::I64(20)))];
        for _ in 0..16 {
            let _ = t.query(&pred).unwrap();
        }
        let after = cat.storage_stats();
        assert!(after.wah_bytes > 0, "built wah bitmaps must be accounted");
        assert_eq!(
            after.index_bytes,
            before.index_bytes + after.wah_bytes,
            "index_bytes must grow by exactly the built wah bytes"
        );
    }
}
