//! Tables: epoch-guarded sealed segments plus one open write segment.
//!
//! ## Concurrency scheme
//!
//! A table's sealed segments live behind `RwLock<Arc<Vec<Arc<SealedSegment>>>>`
//! — an epoch-style snapshot: readers clone the outer `Arc` (O(1)) and work
//! on a frozen segment list while writers install a new list by swapping
//! the `Arc` (copy-on-write of the *pointer vector*, never of data). The
//! open segment — the write head — sits behind its own `RwLock`; queries
//! take it for read just long enough to scan its (bounded, ≤ one segment)
//! rows, appenders take it for write.
//!
//! Lock order is `open` before `sealed` everywhere. Sealing happens while
//! holding the open write lock, so a reader holding the open read lock
//! observes a consistent pair: the sealed list cannot advance under it.
//! Every query therefore sees an exact *prefix* of the table's rows —
//! never a gap, never a duplicate — identified by `(epoch, visible rows)`.
//!
//! The write head is not a blind buffer: once it holds
//! [`EngineConfig::tail_index_min_rows`] rows, each open column buffer
//! carries an incremental **tail imprint** ([`crate::tail`]) extended on
//! every append inside the same write critical section, so queries skip
//! non-qualifying cachelines of the head instead of scanning it linearly
//! under the read lock. The tail index is discarded at seal, when the
//! sealed segment builds its real per-segment imprint.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use colstore::relation::AnyColumn;
use colstore::{AccessStats, Column, ColumnType, Error, IdList, Result, Scalar, Value};
use imprints::relation_index::{ValueRange, ValueSet};

use crate::config::EngineConfig;
use crate::executor::WorkerPool;
use crate::persist::{SegmentEntry, TableStore};
use crate::segment::SealedSegment;
use crate::tail::AnyTailIndex;

/// A named column of a table schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnDef {
    /// Column name.
    pub name: String,
    /// Scalar type.
    pub ty: ColumnType,
}

type SegmentList = Arc<Vec<Arc<SealedSegment>>>;

/// One sealed segment's share of a batch sweep: its base row id plus one
/// (answer, stats) pair per query slot.
type SegSweep = (u64, Vec<(crate::segment::SegBatchAnswer, AccessStats)>);

struct OpenSegment {
    base: u64,
    bufs: Vec<AnyColumn>,
    /// Per-column incremental tail imprints over `bufs`, present once the
    /// head crossed [`EngineConfig::tail_index_min_rows`]; maintained
    /// under the open write lock and discarded at seal.
    tails: Option<Vec<AnyTailIndex>>,
}

impl OpenSegment {
    fn len(&self) -> usize {
        self.bufs.first().map_or(0, AnyColumn::len)
    }
}

/// Cumulative table counters.
#[derive(Debug, Default)]
pub struct TableStats {
    /// Queries served.
    pub queries: AtomicU64,
    /// Rows appended over the table's lifetime.
    pub rows_appended: AtomicU64,
    /// Segments sealed.
    pub segments_sealed: AtomicU64,
    /// Segment-column index rebuilds applied by the planner.
    pub rebuilds: AtomicU64,
    /// Compaction merges applied (each replaces several segments by one).
    pub compactions: AtomicU64,
    /// Sealed segments consumed as compaction inputs.
    pub segments_compacted: AtomicU64,
}

/// Aggregate statistics of one query.
#[derive(Debug, Clone, Copy, Default)]
pub struct QueryStats {
    /// Merged access counters across all *sealed* segments visited.
    pub access: AccessStats,
    /// Access counters of the open write head, kept separate from the
    /// sealed-path work: imprint probes/skips when the tail index served
    /// the head, scalar comparisons when it fell back to the linear scan.
    pub tail_access: AccessStats,
    /// Whether the open rows were answered through the incremental tail
    /// imprint (`false`: head below the engage threshold, tail indexing
    /// disabled, or no predicate touched the head).
    pub tail_indexed: bool,
    /// Rows in the open write head visible to the query.
    pub open_rows: usize,
    /// Sealed segments visited.
    pub sealed_segments: usize,
    /// Rows visible to the query (its consistent prefix length).
    pub visible_rows: u64,
    /// The table epoch the query executed against.
    pub epoch: u64,
}

/// One request of a [`Table::query_batch`] call: named column predicates —
/// each a [`ValueSet`] (one range, an IN-list, any union of intervals) —
/// combined conjunctively or, with `any`, disjunctively; materializing ids
/// or counting.
#[derive(Debug, Clone)]
pub struct BatchQuery {
    /// `(column name, value set)` predicates; empty selects all rows under
    /// conjunction semantics and none under `any`.
    pub preds: Vec<(String, ValueSet)>,
    /// `true` evaluates the predicates as a disjunction (`OR` group).
    pub any: bool,
    /// `true` counts matching rows instead of materializing ids.
    pub count_only: bool,
}

impl BatchQuery {
    /// A materializing query over single-range `preds` (the pre-`ValueSet`
    /// shape, kept for callers without IN-lists).
    pub fn ids(preds: Vec<(String, ValueRange)>) -> BatchQuery {
        BatchQuery::ids_sets(preds.into_iter().map(|(n, r)| (n, ValueSet::range(r))).collect())
    }

    /// A count-only query over single-range `preds`.
    pub fn count(preds: Vec<(String, ValueRange)>) -> BatchQuery {
        BatchQuery::count_sets(preds.into_iter().map(|(n, r)| (n, ValueSet::range(r))).collect())
    }

    /// A materializing conjunction over value-set predicates.
    pub fn ids_sets(preds: Vec<(String, ValueSet)>) -> BatchQuery {
        BatchQuery { preds, any: false, count_only: false }
    }

    /// A count-only conjunction over value-set predicates.
    pub fn count_sets(preds: Vec<(String, ValueSet)>) -> BatchQuery {
        BatchQuery { preds, any: false, count_only: true }
    }

    /// The same query with disjunction (`OR` group) semantics.
    pub fn or_group(mut self) -> BatchQuery {
        self.any = true;
        self
    }
}

/// The answer of one [`BatchQuery`].
#[derive(Debug, Clone, PartialEq)]
pub enum BatchAnswer {
    /// Global matching row ids (a materializing query).
    Ids(IdList),
    /// Matching row count (a count-only query).
    Count(u64),
}

/// A sharded, concurrently readable and appendable relation.
pub struct Table {
    name: String,
    schema: Vec<ColumnDef>,
    cfg: EngineConfig,
    sealed: RwLock<SegmentList>,
    open: RwLock<OpenSegment>,
    epoch: AtomicU64,
    stats: TableStats,
    /// The durable side of the table when
    /// [`StorageOptions::root`](crate::StorageOptions::root) is set;
    /// `None` keeps the table memory-only.
    store: Option<TableStore>,
    /// Failed persistence attempts (segment writes or manifest commits).
    /// A failure degrades durability to in-memory availability — appends
    /// and queries keep working — and rings this counter instead.
    persist_errors: AtomicU64,
}

impl Table {
    /// Creates an empty table with `schema`. The configuration's
    /// [`refine_kernel`](EngineConfig::refine_kernel) scopes to this
    /// table: it is resolved against the `IMPRINTS_REFINE_KERNEL`
    /// environment override (which wins when set) and threaded into every
    /// sealed-segment, write-head and conjunction value check — creating
    /// another table with a different selection does not affect this one.
    pub fn new(name: &str, schema: &[(&str, ColumnType)], cfg: EngineConfig) -> Result<Table> {
        cfg.validate();
        if schema.is_empty() {
            return Err(Error::Mismatch("a table needs at least one column".into()));
        }
        let mut defs = Vec::with_capacity(schema.len());
        for (cname, ty) in schema {
            if defs.iter().any(|d: &ColumnDef| d.name == *cname) {
                return Err(Error::Mismatch(format!("duplicate column {cname:?}")));
            }
            defs.push(ColumnDef { name: (*cname).to_string(), ty: *ty });
        }
        let bufs = defs.iter().map(|d| AnyColumn::new_empty(d.ty)).collect();
        let store = match &cfg.storage.root {
            Some(root) => Some(TableStore::create(root, name, &defs)?),
            None => None,
        };
        Ok(Table {
            name: name.to_string(),
            schema: defs,
            cfg,
            sealed: RwLock::new(Arc::new(Vec::new())),
            open: RwLock::new(OpenSegment { base: 0, bufs, tails: None }),
            epoch: AtomicU64::new(0),
            stats: TableStats::default(),
            store,
            persist_errors: AtomicU64::new(0),
        })
    }

    /// Reassembles a table from its recovered durable state — sealed
    /// segments as listed in the committed manifest, the open write head
    /// empty and starting right after the last sealed row.
    pub(crate) fn recover(
        name: &str,
        schema: Vec<ColumnDef>,
        cfg: EngineConfig,
        store: TableStore,
        segments: Vec<Arc<SealedSegment>>,
        epoch: u64,
    ) -> Table {
        let base = segments.last().map_or(0, |s| s.base() + s.rows() as u64);
        let bufs = schema.iter().map(|d| AnyColumn::new_empty(d.ty)).collect();
        Table {
            name: name.to_string(),
            schema,
            cfg,
            sealed: RwLock::new(Arc::new(segments)),
            open: RwLock::new(OpenSegment { base, bufs, tails: None }),
            epoch: AtomicU64::new(epoch),
            stats: TableStats::default(),
            store: Some(store),
            persist_errors: AtomicU64::new(0),
        }
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The schema.
    pub fn schema(&self) -> &[ColumnDef] {
        &self.schema
    }

    /// The table's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// Monotonic structure-change counter (bumped per seal and per
    /// maintenance swap).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Cumulative counters.
    pub fn stats(&self) -> &TableStats {
        &self.stats
    }

    /// Total rows (sealed + open) at this instant.
    pub fn row_count(&self) -> u64 {
        let open = self.open.read().expect("open lock");
        open.base + open.len() as u64
    }

    /// Number of sealed segments at this instant.
    pub fn sealed_segment_count(&self) -> usize {
        self.sealed.read().expect("sealed lock").len()
    }

    /// Bytes of secondary-index structures: every sealed segment's imprint
    /// and zonemap, plus the open head's tail imprints once built.
    pub fn index_bytes(&self) -> usize {
        let open = self.open.read().expect("open lock");
        let sealed = self.sealed.read().expect("sealed lock").clone();
        let tail_bytes: usize =
            open.tails.as_ref().map_or(0, |tails| tails.iter().map(AnyTailIndex::size_bytes).sum());
        drop(open);
        sealed
            .iter()
            .map(|s| s.columns().iter().map(|c| c.index_bytes()).sum::<usize>())
            .sum::<usize>()
            + tail_bytes
    }

    /// Resolves and type-checks `(name, value set)` predicates against the
    /// schema.
    fn resolve(&self, preds: &[(&str, ValueSet)]) -> Result<Vec<(usize, ValueSet)>> {
        resolve_sets(&self.schema, preds)
    }

    // ------------------------------------------------------------------
    // Appending
    // ------------------------------------------------------------------

    /// Appends one row (`values` in schema order). Prefer
    /// [`Table::append_batch`] for throughput.
    pub fn append_row(&self, values: &[Value]) -> Result<()> {
        if values.len() != self.schema.len() {
            return Err(Error::Mismatch(format!(
                "row has {} values, schema has {} columns",
                values.len(),
                self.schema.len()
            )));
        }
        let mut batch: Vec<AnyColumn> =
            self.schema.iter().map(|d| AnyColumn::new_empty(d.ty)).collect();
        for (buf, v) in batch.iter_mut().zip(values) {
            buf.push_value(*v)?;
        }
        self.append_batch(batch)
    }

    /// Appends a columnar batch (schema order, equal lengths), sealing
    /// segments as they fill. Returns after all rows are visible.
    pub fn append_batch(&self, batch: Vec<AnyColumn>) -> Result<()> {
        if batch.len() != self.schema.len() {
            return Err(Error::Mismatch(format!(
                "batch has {} columns, schema has {}",
                batch.len(),
                self.schema.len()
            )));
        }
        let rows = batch.first().map_or(0, AnyColumn::len);
        for (buf, def) in batch.iter().zip(&self.schema) {
            if buf.column_type() != def.ty {
                return Err(Error::Mismatch(format!(
                    "batch column for {:?} has type {}, schema says {}",
                    def.name,
                    buf.column_type(),
                    def.ty
                )));
            }
            if buf.len() != rows {
                return Err(Error::Mismatch("ragged append batch".into()));
            }
        }
        if rows == 0 {
            return Ok(());
        }

        let mut open = self.open.write().expect("open lock");
        let mut taken = 0usize;
        while taken < rows {
            let room = self.cfg.segment_rows - open.len();
            let take = room.min(rows - taken);
            let from = open.len();
            for (buf, src) in open.bufs.iter_mut().zip(&batch) {
                buf.extend_from_range(src, taken..taken + take)?;
            }
            taken += take;
            if open.len() == self.cfg.segment_rows {
                // The chunk filled the segment: sealing builds the real
                // per-segment imprint and discards the tail, so extending
                // (or building) the tail for these rows would be pure
                // throwaway work — skip straight to the seal.
                self.seal_open(&mut open);
            } else {
                index_open_tail(&mut open, from, self.cfg.tail_index_min_rows);
            }
        }
        self.stats.rows_appended.fetch_add(rows as u64, Ordering::Relaxed);
        Ok(())
    }

    /// Seals the (full) open segment into the sealed list. Caller holds the
    /// open write lock, which is what makes the seal atomic to readers. The
    /// tail imprint is discarded here: the sealed segment builds its real
    /// per-segment imprint (with binning inheritance) below.
    ///
    /// Index building and the durable segment write both happen *before*
    /// the sealed lock — only the list swap needs it. Seals are serialized
    /// by the open write lock the caller holds, so the previous segment
    /// (read from a snapshot for binning inheritance) cannot be outpaced
    /// by another seal; a concurrent maintenance swap of it is harmless,
    /// the pinned `Arc` stays valid. Persisting first also means a
    /// manifest can never name a directory that is not fully on disk.
    fn seal_open(&self, open: &mut OpenSegment) {
        open.tails = None;
        let bufs = std::mem::replace(
            &mut open.bufs,
            self.schema.iter().map(|d| AnyColumn::new_empty(d.ty)).collect(),
        );
        let base = open.base;
        let rows = bufs.first().map_or(0, AnyColumn::len);
        let prev = self.sealed_snapshot();
        let seg =
            Arc::new(SealedSegment::seal(base, bufs, prev.last().map(Arc::as_ref), &self.cfg));
        self.persist_segment(&seg);
        let mut sealed = self.sealed.write().expect("sealed lock");
        let mut list: Vec<Arc<SealedSegment>> = sealed.as_ref().clone();
        list.push(seg);
        *sealed = Arc::new(list);
        // Bump while still holding the write lock, so a reader holding the
        // read lock always sees an epoch that matches the list it pinned.
        self.epoch.fetch_add(1, Ordering::AcqRel);
        let epoch = self.epoch.load(Ordering::Acquire);
        let snapshot = sealed.clone();
        drop(sealed);
        open.base = base + rows as u64;
        self.stats.segments_sealed.fetch_add(1, Ordering::Relaxed);
        self.commit_manifest_for(epoch, &snapshot);
    }

    /// Seals the open write head even when partially filled — the
    /// clean-shutdown hook making every appended row durable before the
    /// process exits. A later append simply starts a fresh segment, and
    /// queries are unaffected (a sealed partial segment answers exactly
    /// like the open rows did). Returns whether anything was sealed.
    pub fn flush_open(&self) -> bool {
        let mut open = self.open.write().expect("open lock");
        if open.len() == 0 {
            return false;
        }
        self.seal_open(&mut open);
        true
    }

    /// Writes `seg`'s durable directory when the table persists, counting
    /// (not propagating) failures: availability beats durability, and the
    /// manifest commit below refuses to name a segment that never made it
    /// to disk.
    fn persist_segment(&self, seg: &SealedSegment) {
        if let Some(store) = &self.store {
            if store.persist_segment(seg).is_err() {
                self.persist_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Commits the manifest naming `list` at `epoch` on a durable table.
    /// A list containing a never-persisted segment (an earlier write
    /// failure) skips the commit — the durable state stays at its last
    /// good epoch — and counts a persistence error.
    fn commit_manifest_for(&self, epoch: u64, list: &[Arc<SealedSegment>]) {
        let Some(store) = &self.store else { return };
        let entries: Option<Vec<SegmentEntry>> = list
            .iter()
            .map(|s| {
                s.durable_name().map(|dir| SegmentEntry {
                    base: s.base(),
                    rows: s.rows() as u64,
                    dir: dir.to_string(),
                })
            })
            .collect();
        let committed = match entries {
            Some(entries) => store.commit_manifest(epoch, &self.schema, &entries).is_ok(),
            None => false,
        };
        if !committed {
            self.persist_errors.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Failed persistence attempts so far (see [`Table::recover`] docs on
    /// the availability-over-durability policy).
    pub fn persist_errors(&self) -> u64 {
        self.persist_errors.load(Ordering::Relaxed)
    }

    /// `true` when the table writes durable state.
    pub fn is_durable(&self) -> bool {
        self.store.is_some()
    }

    /// The durable store, for catalog-level operations (`drop_table`).
    pub(crate) fn store(&self) -> Option<&TableStore> {
        self.store.as_ref()
    }

    /// Atomically replaces sealed segment `idx` if it is still `old` —
    /// the planner's swap step. Returns whether the swap happened.
    pub(crate) fn replace_segment(
        &self,
        idx: usize,
        old: &Arc<SealedSegment>,
        new: SealedSegment,
    ) -> bool {
        let new = Arc::new(new);
        // Persist before the swap: losing the race below merely leaves an
        // orphan directory for the next startup's garbage collection.
        self.persist_segment(&new);
        let mut sealed = self.sealed.write().expect("sealed lock");
        match sealed.get(idx) {
            Some(cur) if Arc::ptr_eq(cur, old) => {
                let mut list: Vec<Arc<SealedSegment>> = sealed.as_ref().clone();
                list[idx] = new;
                *sealed = Arc::new(list);
                self.epoch.fetch_add(1, Ordering::AcqRel);
                let epoch = self.epoch.load(Ordering::Acquire);
                let snapshot = sealed.clone();
                drop(sealed);
                self.stats.rebuilds.fetch_add(1, Ordering::Relaxed);
                self.commit_manifest_for(epoch, &snapshot);
                true
            }
            _ => false,
        }
    }

    /// Atomically replaces the `old.len()` sealed segments starting at
    /// `start` with the single merged segment `new` — the compaction swap.
    /// Succeeds only if every segment of the window is still the exact
    /// `Arc` the merge was built from (a seal appending behind the window
    /// does not invalidate it; a concurrent rebuild or compaction inside it
    /// does). Readers pinned to the old list keep a fully consistent view;
    /// new readers see the merged segment. Returns whether the swap
    /// happened.
    pub(crate) fn replace_segments(
        &self,
        start: usize,
        old: &[Arc<SealedSegment>],
        new: SealedSegment,
    ) -> bool {
        debug_assert!(old.len() >= 2, "compaction must merge at least two segments");
        debug_assert_eq!(new.base(), old[0].base(), "merged segment must keep the window base");
        debug_assert_eq!(
            new.rows(),
            old.iter().map(|s| s.rows()).sum::<usize>(),
            "merged segment must keep every row"
        );
        let new = Arc::new(new);
        self.persist_segment(&new);
        let mut sealed = self.sealed.write().expect("sealed lock");
        let window = match sealed.get(start..start + old.len()) {
            Some(w) => w,
            None => return false,
        };
        if !window.iter().zip(old).all(|(cur, o)| Arc::ptr_eq(cur, o)) {
            return false;
        }
        let mut list: Vec<Arc<SealedSegment>> = Vec::with_capacity(sealed.len() - old.len() + 1);
        list.extend(sealed[..start].iter().cloned());
        list.push(new);
        list.extend(sealed[start + old.len()..].iter().cloned());
        *sealed = Arc::new(list);
        self.epoch.fetch_add(1, Ordering::AcqRel);
        let epoch = self.epoch.load(Ordering::Acquire);
        let snapshot = sealed.clone();
        drop(sealed);
        self.stats.compactions.fetch_add(1, Ordering::Relaxed);
        self.stats.segments_compacted.fetch_add(old.len() as u64, Ordering::Relaxed);
        self.commit_manifest_for(epoch, &snapshot);
        true
    }

    /// The current sealed segment list (a frozen snapshot).
    pub(crate) fn sealed_snapshot(&self) -> SegmentList {
        self.sealed.read().expect("sealed lock").clone()
    }

    // ------------------------------------------------------------------
    // Querying
    // ------------------------------------------------------------------

    /// Evaluates a conjunction of `(column, range)` predicates serially on
    /// the calling thread. An empty predicate list selects every row.
    pub fn query(&self, preds: &[(&str, ValueRange)]) -> Result<IdList> {
        Ok(self.query_with_stats(preds, None)?.0)
    }

    /// [`Table::query`] fanned out over a worker pool, one task per sealed
    /// segment morsel.
    pub fn query_on(&self, pool: &WorkerPool, preds: &[(&str, ValueRange)]) -> Result<IdList> {
        Ok(self.query_with_stats(preds, Some(pool))?.0)
    }

    /// Evaluates a conjunction of `(column, value set)` predicates —
    /// ranges, IN-lists, or any union of intervals per column.
    pub fn query_sets(&self, preds: &[(&str, ValueSet)]) -> Result<IdList> {
        Ok(self.query_sets_with_stats(preds, false, None)?.0)
    }

    /// Evaluates the predicates as a **disjunction** (`OR` group): rows
    /// matching any of them. An empty group matches nothing.
    pub fn query_any(&self, preds: &[(&str, ValueSet)]) -> Result<IdList> {
        Ok(self.query_sets_with_stats(preds, true, None)?.0)
    }

    /// Counts rows matching any of the predicates (`OR` group).
    pub fn count_any(&self, preds: &[(&str, ValueSet)]) -> Result<u64> {
        Ok(self.count_sets_with_stats(preds, true, None)?.0)
    }

    /// Pins the consistent prefix shared by every read entry point: the
    /// open read lock excludes sealing, so the sealed list and the open
    /// rows agree. Open rows are evaluated under the lock (bounded by one
    /// segment, and through the tail imprint once the head is large
    /// enough); sealed segments are evaluated by the caller after release,
    /// on the frozen snapshot. Both [`Table::query_with_stats`] and
    /// [`Table::count_with_stats`] go through here, so the two entry
    /// points cannot drift on the consistency scheme.
    fn pin_prefix(&self, rpreds: &[(usize, ValueSet)], any: bool) -> PinnedPrefix {
        let open = self.open.read().expect("open lock");
        let sealed_guard = self.sealed.read().expect("sealed lock");
        let sealed = sealed_guard.clone();
        // Read under the lock: epoch bumps happen inside the write
        // critical sections, so this value names exactly the pinned
        // (sealed list, open rows) pair.
        let epoch = self.epoch();
        drop(sealed_guard);
        let kernel = self.refine_kernel();
        let open_eval = eval_open(&open.bufs, open.tails.as_deref(), rpreds, any, kernel);
        PinnedPrefix { sealed, open_base: open.base, open: open_eval, epoch }
    }

    /// This table's refinement kernel: the configured selection resolved
    /// against the `IMPRINTS_REFINE_KERNEL` environment override.
    fn refine_kernel(&self) -> imprints::simd::RefineKernel {
        imprints::simd::effective_kernel(self.cfg.refine_kernel)
    }

    /// Seeds the per-query statistics from a pinned prefix (the fields
    /// both read entry points report identically).
    fn prefix_stats(pin: &PinnedPrefix) -> QueryStats {
        QueryStats {
            tail_access: pin.open.access,
            tail_indexed: pin.open.tail_indexed,
            open_rows: pin.open.rows,
            sealed_segments: pin.sealed.len(),
            visible_rows: pin.open_base + pin.open.rows as u64,
            epoch: pin.epoch,
            ..Default::default()
        }
    }

    /// Full query entry point: resolves predicates, pins a consistent
    /// prefix (sealed list + open rows), evaluates, merges ordered per-
    /// segment id lists, and reports statistics.
    pub fn query_with_stats(
        &self,
        preds: &[(&str, ValueRange)],
        pool: Option<&WorkerPool>,
    ) -> Result<(IdList, QueryStats)> {
        let sets: Vec<(&str, ValueSet)> =
            preds.iter().map(|(n, r)| (*n, ValueSet::range(*r))).collect();
        self.query_sets_with_stats(&sets, false, pool)
    }

    /// The general materializing entry point: value-set predicates under
    /// conjunction (`any == false`) or disjunction (`any == true`)
    /// semantics, with the same pinned-prefix consistency as
    /// [`Table::query_with_stats`].
    pub fn query_sets_with_stats(
        &self,
        preds: &[(&str, ValueSet)],
        any: bool,
        pool: Option<&WorkerPool>,
    ) -> Result<(IdList, QueryStats)> {
        let rpreds = Arc::new(self.resolve(preds)?);
        let pin = self.pin_prefix(&rpreds, any);
        let mut stats = Self::prefix_stats(&pin);

        let eval = move |seg: &SealedSegment, rpreds: &[(usize, ValueSet)]| {
            if any {
                seg.evaluate_any(rpreds)
            } else {
                seg.evaluate(rpreds)
            }
        };
        let per_segment: Vec<(u64, IdList, AccessStats)> = match pool {
            Some(pool) if pin.sealed.len() > 1 => {
                let results = pool.scatter(pin.sealed.iter().map(|seg| {
                    let seg = Arc::clone(seg);
                    let rpreds = Arc::clone(&rpreds);
                    move || {
                        let (ids, st) = eval(&seg, &rpreds);
                        (seg.base(), ids, st)
                    }
                }));
                let mut out = Vec::with_capacity(results.len());
                for r in results {
                    out.push(r.ok_or_else(|| {
                        Error::Mismatch("segment evaluation task panicked".into())
                    })?);
                }
                out
            }
            _ => pin
                .sealed
                .iter()
                .map(|seg| {
                    let (ids, st) = eval(seg, &rpreds);
                    (seg.base(), ids, st)
                })
                .collect(),
        };

        let mut merged = IdList::with_capacity(
            per_segment.iter().map(|(_, ids, _)| ids.len()).sum::<usize>() + pin.open.hits.len(),
        );
        for (base, ids, st) in per_segment {
            stats.access.merge(&st);
            merged.extend_offset(&ids, base);
        }
        merged.extend_offset(&pin.open.hits, pin.open_base);
        self.stats.queries.fetch_add(1, Ordering::Relaxed);
        Ok((merged, stats))
    }

    /// Counts matching rows without materializing ids, with the same
    /// pinned-prefix consistency, epoch reporting and tail/sealed stats
    /// split as [`Table::query_with_stats`].
    pub fn count_with_stats(
        &self,
        preds: &[(&str, ValueRange)],
        pool: Option<&WorkerPool>,
    ) -> Result<(u64, QueryStats)> {
        let sets: Vec<(&str, ValueSet)> =
            preds.iter().map(|(n, r)| (*n, ValueSet::range(*r))).collect();
        self.count_sets_with_stats(&sets, false, pool)
    }

    /// The general counting entry point: value-set predicates under
    /// conjunction or disjunction semantics — the count twin of
    /// [`Table::query_sets_with_stats`].
    pub fn count_sets_with_stats(
        &self,
        preds: &[(&str, ValueSet)],
        any: bool,
        pool: Option<&WorkerPool>,
    ) -> Result<(u64, QueryStats)> {
        let rpreds = Arc::new(self.resolve(preds)?);
        let pin = self.pin_prefix(&rpreds, any);
        let mut stats = Self::prefix_stats(&pin);

        let tally = move |seg: &SealedSegment, rpreds: &[(usize, ValueSet)]| {
            if any {
                let (ids, st) = seg.evaluate_any(rpreds);
                (ids.len() as u64, st)
            } else {
                seg.count(rpreds)
            }
        };
        let per_segment: Vec<(u64, AccessStats)> = match pool {
            Some(pool) if pin.sealed.len() > 1 => {
                let results = pool.scatter(pin.sealed.iter().map(|seg| {
                    let seg = Arc::clone(seg);
                    let rpreds = Arc::clone(&rpreds);
                    move || tally(&seg, &rpreds)
                }));
                let mut out = Vec::with_capacity(results.len());
                for r in results {
                    out.push(
                        r.ok_or_else(|| Error::Mismatch("segment count task panicked".into()))?,
                    );
                }
                out
            }
            _ => pin.sealed.iter().map(|seg| tally(seg, &rpreds)).collect(),
        };

        let mut total = 0u64;
        for (n, st) in per_segment {
            stats.access.merge(&st);
            total += n;
        }
        self.stats.queries.fetch_add(1, Ordering::Relaxed);
        Ok((total + pin.open.hits.len() as u64, stats))
    }

    /// Counts matching rows without materializing ids.
    pub fn count(&self, preds: &[(&str, ValueRange)], pool: Option<&WorkerPool>) -> Result<u64> {
        Ok(self.count_with_stats(preds, pool)?.0)
    }

    /// Evaluates many independent queries against **one pinned snapshot**
    /// — the serving layer's shared-morsel batch dispatch.
    ///
    /// All queries observe the same consistent prefix (one epoch, one
    /// sealed list, one open-head read), and the sealed segments are swept
    /// **once per batch**: each segment is one task answering every
    /// query's predicates while its data and indexes are cache-hot
    /// ([`SealedSegment::evaluate_batch`]), instead of one cold sealed-list
    /// walk per query. Answers are byte-identical to issuing each query
    /// through [`Table::query_with_stats`] / [`Table::count_with_stats`]
    /// against an unchanging table.
    ///
    /// Per-query predicate resolution errors come back in that query's
    /// slot; the remaining queries still evaluate. The snapshot stays valid
    /// even if the table is concurrently dropped from its catalog — the
    /// pinned `Arc`s keep every segment alive until the batch finishes.
    pub fn query_batch(
        &self,
        queries: &[BatchQuery],
        pool: Option<&WorkerPool>,
    ) -> Vec<Result<(BatchAnswer, QueryStats)>> {
        use crate::segment::{SegBatchAnswer, SegBatchQuery};

        // Resolve every query first; failures keep their slot and never
        // reach the data pass.
        let mut resolved: Vec<Result<Vec<(usize, ValueSet)>>> = queries
            .iter()
            .map(|q| {
                let preds: Vec<(&str, ValueSet)> =
                    q.preds.iter().map(|(n, s)| (n.as_str(), s.clone())).collect();
                self.resolve(&preds)
            })
            .collect();
        let valid: Vec<usize> = (0..resolved.len()).filter(|&i| resolved[i].is_ok()).collect();

        // Pin ONE consistent prefix for the whole batch: a single open
        // read (every query's head evaluation happens under it) and a
        // single frozen sealed list.
        let open = self.open.read().expect("open lock");
        let sealed_guard = self.sealed.read().expect("sealed lock");
        let sealed = sealed_guard.clone();
        let epoch = self.epoch();
        drop(sealed_guard);
        let kernel = self.refine_kernel();
        let open_base = open.base;
        let opens: Vec<OpenEval> = valid
            .iter()
            .map(|&i| {
                let rp = resolved[i].as_ref().expect("valid index");
                eval_open(&open.bufs, open.tails.as_deref(), rp, queries[i].any, kernel)
            })
            .collect();
        drop(open);

        // One shared sweep per sealed segment, answering every valid query.
        let rpreds: Arc<Vec<Vec<(usize, ValueSet)>>> = Arc::new(
            valid.iter().map(|&i| resolved[i].as_ref().expect("valid index").clone()).collect(),
        );
        let flags: Arc<Vec<(bool, bool)>> =
            Arc::new(valid.iter().map(|&i| (queries[i].any, queries[i].count_only)).collect());
        let sweep = |seg: &SealedSegment| {
            let qs: Vec<SegBatchQuery> = rpreds
                .iter()
                .zip(flags.iter())
                .map(|(preds, &(any, count_only))| SegBatchQuery { preds, any, count_only })
                .collect();
            seg.evaluate_batch(&qs)
        };
        let per_segment: Vec<Option<SegSweep>> = match pool {
            Some(pool) if sealed.len() > 1 && !valid.is_empty() => {
                pool.scatter(sealed.iter().map(|seg| {
                    let seg = Arc::clone(seg);
                    let rpreds = Arc::clone(&rpreds);
                    let flags = Arc::clone(&flags);
                    move || {
                        let qs: Vec<SegBatchQuery> = rpreds
                            .iter()
                            .zip(flags.iter())
                            .map(|(preds, &(any, count_only))| SegBatchQuery {
                                preds,
                                any,
                                count_only,
                            })
                            .collect();
                        (seg.base(), seg.evaluate_batch(&qs))
                    }
                }))
            }
            _ => sealed.iter().map(|seg| Some((seg.base(), sweep(seg)))).collect(),
        };
        let panicked = per_segment.iter().any(Option::is_none);

        // Assemble per-query answers in segment order.
        let mut answers: Vec<Option<(BatchAnswer, QueryStats)>> = valid
            .iter()
            .zip(&opens)
            .map(|(_, open_eval)| {
                let stats = QueryStats {
                    tail_access: open_eval.access,
                    tail_indexed: open_eval.tail_indexed,
                    open_rows: open_eval.rows,
                    sealed_segments: sealed.len(),
                    visible_rows: open_base + open_eval.rows as u64,
                    epoch,
                    ..Default::default()
                };
                Some((BatchAnswer::Count(0), stats))
            })
            .collect();
        let mut id_parts: Vec<IdList> = valid.iter().map(|_| IdList::new()).collect();
        if !panicked {
            for entry in per_segment.into_iter().flatten() {
                let (base, seg_answers) = entry;
                debug_assert_eq!(seg_answers.len(), valid.len());
                for (slot, (answer, stats)) in seg_answers.into_iter().enumerate() {
                    let (acc, st) = answers[slot].as_mut().expect("slot populated above");
                    st.access.merge(&stats);
                    match answer {
                        SegBatchAnswer::Ids(ids) => id_parts[slot].extend_offset(&ids, base),
                        SegBatchAnswer::Count(n) => {
                            if let BatchAnswer::Count(total) = acc {
                                *total += n;
                            }
                        }
                    }
                }
            }
        }

        let mut out: Vec<Result<(BatchAnswer, QueryStats)>> = Vec::with_capacity(queries.len());
        let mut slot = 0usize;
        for (i, res) in resolved.iter_mut().enumerate() {
            match std::mem::replace(res, Ok(Vec::new())) {
                Err(e) => out.push(Err(e)),
                Ok(_) => {
                    if panicked {
                        out.push(Err(Error::Mismatch("segment evaluation task panicked".into())));
                        slot += 1;
                        continue;
                    }
                    let (mut answer, stats) = answers[slot].take().expect("assembled above");
                    let open_eval = &opens[slot];
                    match &mut answer {
                        BatchAnswer::Count(total) if queries[i].count_only => {
                            *total += open_eval.hits.len() as u64;
                        }
                        _ => {
                            let mut ids = std::mem::take(&mut id_parts[slot]);
                            ids.extend_offset(&open_eval.hits, open_base);
                            answer = BatchAnswer::Ids(ids);
                        }
                    }
                    self.stats.queries.fetch_add(1, Ordering::Relaxed);
                    out.push(Ok((answer, stats)));
                    slot += 1;
                }
            }
        }
        out
    }

    /// Reconstructs the tuple at global row `id` (late materialization).
    pub fn tuple(&self, id: u64) -> Option<Vec<Value>> {
        let open = self.open.read().expect("open lock");
        if id >= open.base {
            let local = (id - open.base) as usize;
            return (local < open.len())
                .then(|| open.bufs.iter().map(|b| b.value(local).expect("in range")).collect());
        }
        let sealed = self.sealed.read().expect("sealed lock").clone();
        drop(open);
        let idx = sealed.partition_point(|s| s.base() + s.rows() as u64 <= id);
        let seg = sealed.get(idx)?;
        let local = (id - seg.base()) as usize;
        Some(seg.columns().iter().map(|c| c.value(local).expect("in range")).collect())
    }

    /// A consistent point-in-time copy of the table's visible rows — meant
    /// for validation and tests, not the hot path (it copies the data).
    pub fn snapshot(&self) -> TableSnapshot {
        let open = self.open.read().expect("open lock");
        let sealed_guard = self.sealed.read().expect("sealed lock");
        let sealed = sealed_guard.clone();
        let epoch = self.epoch();
        drop(sealed_guard);
        let open_bufs = open.bufs.clone();
        let open_base = open.base;
        drop(open);
        TableSnapshot {
            schema: self.schema.clone(),
            sealed,
            open_base,
            open_bufs,
            epoch,
            kernel: self.refine_kernel(),
        }
    }
}

/// Resolves and type-checks `(name, value set)` predicates against
/// `schema` — shared by [`Table`] and [`TableSnapshot`] so both surfaces
/// report a mismatched bound (in any term of any set) as an error instead
/// of panicking later.
fn resolve_sets(
    schema: &[ColumnDef],
    preds: &[(&str, ValueSet)],
) -> Result<Vec<(usize, ValueSet)>> {
    let mut out = Vec::with_capacity(preds.len());
    for (name, set) in preds {
        let pos = schema
            .iter()
            .position(|d| d.name == *name)
            .ok_or_else(|| Error::NotFound(format!("column {name:?}")))?;
        let ty = schema[pos].ty;
        for range in &set.terms {
            for bound in [&range.low, &range.high].into_iter().flatten() {
                if bound.column_type() != ty {
                    return Err(Error::Mismatch(format!(
                        "predicate bound {bound} has type {}, column {name:?} holds {ty}",
                        bound.column_type()
                    )));
                }
            }
        }
        out.push((pos, (*set).clone()));
    }
    Ok(out)
}

/// The pinned consistent prefix one read observes: the frozen sealed list
/// plus the already-evaluated open write head (see [`Table::pin_prefix`]).
struct PinnedPrefix {
    sealed: SegmentList,
    open_base: u64,
    open: OpenEval,
    epoch: u64,
}

/// Result of evaluating a query's predicates over the open write head.
#[derive(Debug, Default)]
struct OpenEval {
    /// Matching head-local row ids.
    hits: IdList,
    /// Open rows visible to the query.
    rows: usize,
    /// Work performed on the head (imprint probes or scalar comparisons).
    access: AccessStats,
    /// Whether the tail imprint served the head.
    tail_indexed: bool,
}

/// Evaluates resolved predicates over the open segment.
///
/// Conjunctions: the first predicate reads the whole head, so it routes
/// through the column's tail imprint when one is maintained — term by term
/// for multi-interval sets ([`AnyTailIndex::evaluate_set`]), skipping
/// non-qualifying cachelines exactly like sealed segments do; the
/// remaining predicates weed the (typically few, scattered) survivors
/// with the gather-style kernel. Disjunctions (`any`): every arm reads
/// the whole head, so each rides its *own* column's tail imprint and the
/// results union. Without tails every predicate takes the kernel path
/// over the full buffer.
fn eval_open(
    bufs: &[AnyColumn],
    tails: Option<&[AnyTailIndex]>,
    rpreds: &[(usize, ValueSet)],
    any: bool,
    kernel: imprints::simd::RefineKernel,
) -> OpenEval {
    let rows = bufs.first().map_or(0, AnyColumn::len);
    if rows == 0 {
        return OpenEval::default();
    }
    if rpreds.is_empty() {
        // The empty conjunction selects everything; the empty disjunction
        // (identity of OR) selects nothing.
        if any {
            return OpenEval { rows, ..Default::default() };
        }
        return OpenEval {
            hits: IdList::from_sorted((0..rows as u64).collect()),
            rows,
            ..Default::default()
        };
    }
    let mut out = OpenEval { rows, ..Default::default() };
    if any {
        let mut acc = IdList::new();
        for (col, set) in rpreds {
            let hits = match tails {
                Some(tails) => {
                    let tail = &tails[*col];
                    debug_assert_eq!(
                        tail.rows(),
                        rows,
                        "tail imprint out of sync with the open buffer"
                    );
                    let (ids, stats) = tail.evaluate_set(&bufs[*col], set, kernel);
                    out.access.merge(&stats);
                    out.tail_indexed = true;
                    ids
                }
                None => {
                    let (ids, compared) = filter_open_column(&bufs[*col], set, None, rows, kernel);
                    out.access.value_comparisons += compared;
                    IdList::from_sorted(ids)
                }
            };
            acc = acc.union(&hits);
        }
        out.hits = acc;
        return out;
    }
    let mut survivors: Option<Vec<u64>> = None;
    for (i, (col, set)) in rpreds.iter().enumerate() {
        let next = match (i, tails) {
            (0, Some(tails)) => {
                let tail = &tails[*col];
                debug_assert_eq!(
                    tail.rows(),
                    rows,
                    "tail imprint out of sync with the open buffer"
                );
                let (ids, stats) = tail.evaluate_set(&bufs[*col], set, kernel);
                out.access.merge(&stats);
                out.tail_indexed = true;
                ids.into_vec()
            }
            _ => {
                let current = survivors.as_deref();
                let (ids, compared) = filter_open_column(&bufs[*col], set, current, rows, kernel);
                out.access.value_comparisons += compared;
                ids
            }
        };
        if next.is_empty() {
            return out;
        }
        survivors = Some(next);
    }
    out.hits = IdList::from_sorted(survivors.unwrap_or_default());
    out
}

/// Maintains the open segment's tail imprints after an append landed rows
/// `from..open.len()`: extends existing tails with exactly those rows,
/// builds the tails once the head crosses `min_rows` (sampling bin borders
/// from the rows accumulated so far), and re-bins a tail whose appended
/// data drifted off its sampled domain — all bounded by one segment of
/// rows, under the open write lock the caller already holds.
fn index_open_tail(open: &mut OpenSegment, from: usize, min_rows: usize) {
    if open.len() < min_rows {
        return;
    }
    match &mut open.tails {
        Some(tails) => {
            for (tail, buf) in tails.iter_mut().zip(&open.bufs) {
                tail.extend(buf, from);
                if tail.needs_rebuild() {
                    tail.rebuild(buf);
                }
            }
        }
        None => open.tails = Some(open.bufs.iter().map(AnyTailIndex::build).collect()),
    }
}

/// One column's filter pass over the open segment, routed through the
/// table's refinement kernel ([`imprints::simd`]): a full-head pass takes
/// the chunked cacheline kernel, a survivors pass the gather-style
/// [`SetKernel::filter_ids`](imprints::simd::SetKernel::filter_ids) over
/// the (scattered) candidate ids. Returns the matching local ids and the
/// number of values actually compared — zero when the predicate can match
/// nothing, so the head's `value_comparisons` stay honest.
fn filter_open_column(
    buf: &AnyColumn,
    set: &ValueSet,
    candidates: Option<&[u64]>,
    rows: usize,
    kernel: imprints::simd::RefineKernel,
) -> (Vec<u64>, u64) {
    macro_rules! arm {
        ($c:expr) => {{
            let terms = set.to_predicates().expect("predicates validated against schema");
            let kernel = imprints::simd::SetKernel::with_kernel(&terms, kernel);
            let values = $c.values();
            let mut compared = 0u64;
            match candidates {
                Some(ids) => {
                    let mut kept = ids.to_vec();
                    kernel.filter_ids(values, &mut kept, &mut compared);
                    (kept, compared)
                }
                None => {
                    let mut out = Vec::new();
                    kernel.append_matches(values, 0..rows as u64, &mut out, &mut compared);
                    (out, compared)
                }
            }
        }};
    }
    match buf {
        AnyColumn::I8(c) => arm!(c),
        AnyColumn::U8(c) => arm!(c),
        AnyColumn::I16(c) => arm!(c),
        AnyColumn::U16(c) => arm!(c),
        AnyColumn::I32(c) => arm!(c),
        AnyColumn::U32(c) => arm!(c),
        AnyColumn::I64(c) => arm!(c),
        AnyColumn::U64(c) => arm!(c),
        AnyColumn::F32(c) => arm!(c),
        AnyColumn::F64(c) => arm!(c),
    }
}

/// A frozen, fully materialized view of a table prefix (see
/// [`Table::snapshot`]).
pub struct TableSnapshot {
    schema: Vec<ColumnDef>,
    sealed: SegmentList,
    open_base: u64,
    open_bufs: Vec<AnyColumn>,
    epoch: u64,
    kernel: imprints::simd::RefineKernel,
}

impl TableSnapshot {
    /// The epoch the snapshot was taken at.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Rows visible in the snapshot.
    pub fn row_count(&self) -> u64 {
        self.open_base + self.open_bufs.first().map_or(0, AnyColumn::len) as u64
    }

    /// Evaluates predicates against the frozen view (serial).
    pub fn query(&self, preds: &[(&str, ValueRange)]) -> Result<IdList> {
        let sets: Vec<(&str, ValueSet)> =
            preds.iter().map(|(n, r)| (*n, ValueSet::range(*r))).collect();
        let rpreds = resolve_sets(&self.schema, &sets)?;
        let mut merged = IdList::concat_segments(
            self.sealed.iter().map(|seg| (seg.base(), seg.evaluate(&rpreds).0)),
        );
        let open = eval_open(&self.open_bufs, None, &rpreds, false, self.kernel);
        merged.extend_offset(&open.hits, self.open_base);
        Ok(merged)
    }

    /// The full contents of column `name` as typed values — the oracle
    /// input for validation tests.
    pub fn column_values<T: Scalar>(&self, name: &str) -> Result<Vec<T>> {
        let pos = self
            .schema
            .iter()
            .position(|d| d.name == name)
            .ok_or_else(|| Error::NotFound(format!("column {name:?}")))?;
        let mut out: Vec<T> = Vec::with_capacity(self.row_count() as usize);
        for seg in self.sealed.iter() {
            let col = &seg.columns()[pos];
            let n = col.rows();
            for i in 0..n {
                let v = col.value(i).expect("in range");
                out.push(T::from_value(&v).ok_or_else(|| {
                    Error::Mismatch(format!("column {name:?} is not of the requested type"))
                })?);
            }
        }
        let buf = &self.open_bufs[pos];
        let col: &Column<T> = buf
            .downcast()
            .ok_or_else(|| Error::Mismatch(format!("column {name:?} type mismatch")))?;
        out.extend_from_slice(col.values());
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> EngineConfig {
        EngineConfig { segment_rows: 256, workers: 2, ..Default::default() }
    }

    fn ints(values: std::ops::Range<i64>) -> AnyColumn {
        AnyColumn::I64(values.collect())
    }

    #[test]
    fn append_seals_segments_and_queries_span_them() {
        let t = Table::new("t", &[("v", ColumnType::I64)], small_cfg()).unwrap();
        t.append_batch(vec![ints(0..1000)]).unwrap();
        assert_eq!(t.row_count(), 1000);
        assert_eq!(t.sealed_segment_count(), 3); // 3×256 sealed + 232 open
        let ids = t.query(&[("v", ValueRange::between(Value::I64(100), Value::I64(899)))]).unwrap();
        assert_eq!(ids.as_slice(), (100..900).collect::<Vec<u64>>().as_slice());
    }

    #[test]
    fn parallel_query_equals_serial() {
        let t = Table::new("t", &[("v", ColumnType::I64)], small_cfg()).unwrap();
        let vals: Vec<i64> = (0..5000).map(|i| (i * 37) % 1000).collect();
        t.append_batch(vec![AnyColumn::I64(vals.into_iter().collect())]).unwrap();
        let pool = WorkerPool::new(4);
        let pred = [("v", ValueRange::between(Value::I64(10), Value::I64(50)))];
        let serial = t.query(&pred).unwrap();
        let parallel = t.query_on(&pool, &pred).unwrap();
        assert_eq!(serial, parallel);
        assert!(!serial.is_empty());
        let n = t.count(&pred, Some(&pool)).unwrap();
        assert_eq!(n as usize, serial.len());
    }

    #[test]
    fn multi_column_conjunction() {
        let t = Table::new("t", &[("a", ColumnType::I64), ("b", ColumnType::F64)], small_cfg())
            .unwrap();
        let a: Vec<i64> = (0..2000).map(|i| i % 100).collect();
        let b: Vec<f64> = (0..2000).map(|i| (i % 7) as f64).collect();
        t.append_batch(vec![
            AnyColumn::I64(a.iter().copied().collect()),
            AnyColumn::F64(b.iter().copied().collect()),
        ])
        .unwrap();
        let ids = t
            .query(&[
                ("a", ValueRange::between(Value::I64(10), Value::I64(20))),
                ("b", ValueRange::equals(Value::F64(3.0))),
            ])
            .unwrap();
        let expect: Vec<u64> = (0..2000u64)
            .filter(|&i| (10..=20).contains(&a[i as usize]) && b[i as usize] == 3.0)
            .collect();
        assert_eq!(ids.as_slice(), expect.as_slice());
    }

    #[test]
    fn open_rows_visible_immediately() {
        let t = Table::new("t", &[("v", ColumnType::I32)], small_cfg()).unwrap();
        for i in 0..10 {
            t.append_row(&[Value::I32(i)]).unwrap();
        }
        assert_eq!(t.sealed_segment_count(), 0);
        let ids = t.query(&[("v", ValueRange::at_least(Value::I32(5)))]).unwrap();
        assert_eq!(ids.as_slice(), &[5, 6, 7, 8, 9]);
        assert_eq!(t.tuple(7), Some(vec![Value::I32(7)]));
    }

    #[test]
    fn schema_validation_errors() {
        let t = Table::new("t", &[("v", ColumnType::I64)], small_cfg()).unwrap();
        assert!(t.query(&[("nope", ValueRange::equals(Value::I64(1)))]).is_err());
        assert!(t.query(&[("v", ValueRange::equals(Value::I32(1)))]).is_err());
        assert!(t.append_row(&[Value::I32(1)]).is_err());
        assert!(t.append_batch(vec![AnyColumn::I32(Column::from(vec![1]))]).is_err());
        assert!(Table::new("t", &[], small_cfg()).is_err());
        assert!(
            Table::new("t", &[("a", ColumnType::I8), ("a", ColumnType::I8)], small_cfg()).is_err()
        );
    }

    #[test]
    fn snapshot_rejects_bad_predicates_like_the_table() {
        let t = Table::new("t", &[("v", ColumnType::I64)], small_cfg()).unwrap();
        t.append_batch(vec![ints(0..600)]).unwrap();
        let snap = t.snapshot();
        assert!(snap.query(&[("v", ValueRange::equals(Value::I32(1)))]).is_err());
        assert!(snap.query(&[("nope", ValueRange::equals(Value::I64(1)))]).is_err());
    }

    #[test]
    fn snapshot_is_stable_under_later_appends() {
        let t = Table::new("t", &[("v", ColumnType::I64)], small_cfg()).unwrap();
        t.append_batch(vec![ints(0..600)]).unwrap();
        let snap = t.snapshot();
        t.append_batch(vec![ints(600..1200)]).unwrap();
        assert_eq!(snap.row_count(), 600);
        let ids = snap.query(&[("v", ValueRange::at_least(Value::I64(0)))]).unwrap();
        assert_eq!(ids.len(), 600);
        let vals: Vec<i64> = snap.column_values("v").unwrap();
        assert_eq!(vals, (0..600).collect::<Vec<i64>>());
        assert_eq!(t.row_count(), 1200);
    }

    #[test]
    fn replace_segments_swaps_atomically_and_rejects_stale_windows() {
        let t = Table::new("t", &[("v", ColumnType::I64)], small_cfg()).unwrap();
        t.append_batch(vec![ints(0..1024)]).unwrap(); // 4 sealed segments of 256
        let sealed = t.sealed_snapshot();
        assert_eq!(sealed.len(), 4);
        let pred = [("v", ValueRange::between(Value::I64(100), Value::I64(700)))];
        let before = t.query(&pred).unwrap();
        let epoch = t.epoch();

        let merged = SealedSegment::merge(&sealed[1..3], t.config());
        assert!(t.replace_segments(1, &sealed[1..3], merged));
        assert_eq!(t.sealed_segment_count(), 3);
        assert!(t.epoch() > epoch, "compaction swaps must bump the epoch");
        assert_eq!(t.stats().compactions.load(Ordering::Relaxed), 1);
        assert_eq!(t.stats().segments_compacted.load(Ordering::Relaxed), 2);
        assert_eq!(t.query(&pred).unwrap(), before, "row ids must survive the merge");
        assert_eq!(t.tuple(300), Some(vec![Value::I64(300)]));

        // The same window is now stale: the swap must refuse it.
        let merged_again = SealedSegment::merge(&sealed[1..3], t.config());
        assert!(!t.replace_segments(1, &sealed[1..3], merged_again));
        // And an out-of-range window is refused outright.
        let merged_oob = SealedSegment::merge(&sealed[2..4], t.config());
        assert!(!t.replace_segments(2, &sealed[2..4], merged_oob));
        assert_eq!(t.query(&pred).unwrap(), before);
    }

    fn tail_cfg(min_rows: usize) -> EngineConfig {
        EngineConfig {
            segment_rows: 1024,
            workers: 2,
            tail_index_min_rows: min_rows,
            ..Default::default()
        }
    }

    /// The write head's tail imprint is an invisible accelerator: a
    /// tail-indexed table and a scalar-scan table answer identically, but
    /// the indexed head skips cachelines instead of comparing every row.
    #[test]
    fn tail_indexed_head_matches_scalar_scan_and_skips_lines() {
        let indexed = Table::new("t", &[("v", ColumnType::I64)], tail_cfg(64)).unwrap();
        let scanned = Table::new("t", &[("v", ColumnType::I64)], tail_cfg(usize::MAX)).unwrap();
        // One sealed segment plus a 640-row open head of clustered values.
        let values: Vec<i64> = (0..1664).collect();
        for t in [&indexed, &scanned] {
            t.append_batch(vec![AnyColumn::I64(values.iter().copied().collect())]).unwrap();
            assert_eq!(t.sealed_segment_count(), 1);
        }
        // A narrow range inside the open head (rows 1024..1664).
        let pred = [("v", ValueRange::between(Value::I64(1100), Value::I64(1160)))];
        let (ids_i, st_i) = indexed.query_with_stats(&pred, None).unwrap();
        let (ids_s, st_s) = scanned.query_with_stats(&pred, None).unwrap();
        assert_eq!(ids_i, ids_s);
        assert_eq!(ids_i.as_slice(), (1100..1161).collect::<Vec<u64>>().as_slice());
        assert_eq!(st_i.open_rows, 640);
        assert!(st_i.tail_indexed, "a 640-row head above the threshold must use its tail");
        assert!(!st_s.tail_indexed);
        assert_eq!(st_s.tail_access.value_comparisons, 640, "scalar path compares every row");
        assert!(
            st_i.tail_access.value_comparisons < 640 / 4,
            "tail imprint must weed most of the head without comparisons (did {})",
            st_i.tail_access.value_comparisons
        );
        assert!(st_i.tail_access.lines_skipped > 0);
    }

    /// Sealing discards the tail imprint; the fresh (empty, below
    /// threshold) head falls back to the scalar path until it regrows.
    #[test]
    fn seal_discards_tail_and_conjunctions_use_it_for_the_first_predicate() {
        let t = Table::new("t", &[("a", ColumnType::I64), ("b", ColumnType::I64)], tail_cfg(128))
            .unwrap();
        let a: Vec<i64> = (0..1500).collect();
        let b: Vec<i64> = (0..1500).map(|i| i % 7).collect();
        t.append_batch(vec![
            AnyColumn::I64(a.iter().copied().collect()),
            AnyColumn::I64(b.iter().copied().collect()),
        ])
        .unwrap();
        let pred = [
            ("a", ValueRange::at_least(Value::I64(1200))),
            ("b", ValueRange::equals(Value::I64(3))),
        ];
        let (ids, st) = t.query_with_stats(&pred, None).unwrap();
        let expect: Vec<u64> =
            (0..1500u64).filter(|&i| a[i as usize] >= 1200 && b[i as usize] == 3).collect();
        assert_eq!(ids.as_slice(), expect.as_slice());
        assert!(st.tail_indexed, "first predicate of a conjunction must ride the tail");

        // Fill the head to exactly the seal boundary: the new head is empty
        // and below threshold, so the next query takes the scalar path.
        t.append_batch(vec![ints(0..548), AnyColumn::I64((0..548).map(|i| i % 7).collect())])
            .unwrap();
        assert_eq!(t.row_count() % 1024, 0);
        let (_, st) = t.query_with_stats(&pred, None).unwrap();
        assert_eq!(st.open_rows, 0);
        assert!(!st.tail_indexed, "sealing must discard the head's tail imprint");
    }

    /// Count and query share one pinned-prefix path: identical epoch,
    /// visibility and head accounting, and the count includes open rows.
    #[test]
    fn count_shares_the_pinned_prefix_path_with_query() {
        let t = Table::new("t", &[("v", ColumnType::I64)], tail_cfg(64)).unwrap();
        let vals: Vec<i64> = (0..2500).map(|i| (i * 37) % 1000).collect();
        t.append_batch(vec![AnyColumn::I64(vals.into_iter().collect())]).unwrap();
        let pred = [("v", ValueRange::between(Value::I64(10), Value::I64(50)))];
        let (ids, qs) = t.query_with_stats(&pred, None).unwrap();
        let (n, cs) = t.count_with_stats(&pred, None).unwrap();
        assert_eq!(n as usize, ids.len());
        assert_eq!(cs.epoch, qs.epoch);
        assert_eq!(cs.visible_rows, qs.visible_rows);
        assert_eq!(cs.open_rows, qs.open_rows);
        assert_eq!(cs.sealed_segments, qs.sealed_segments);
        assert_eq!(cs.tail_indexed, qs.tail_indexed);
        assert!(cs.open_rows > 0, "the open head must be part of the count");
        // The sealed count path reports its access work too.
        assert!(cs.access.index_probes > 0 || cs.access.value_comparisons > 0);
    }

    /// `query_batch` must answer byte-identically to issuing each query
    /// alone — same ids, same counts, same epoch/visibility accounting —
    /// for mixed materializing/count batches with the head populated.
    #[test]
    fn query_batch_matches_individual_queries() {
        let t = Table::new("t", &[("a", ColumnType::I64), ("b", ColumnType::I64)], tail_cfg(64))
            .unwrap();
        let a: Vec<i64> = (0..3000).map(|i| (i * 37) % 700).collect();
        let b: Vec<i64> = (0..3000).map(|i| i % 13).collect();
        t.append_batch(vec![
            AnyColumn::I64(a.iter().copied().collect()),
            AnyColumn::I64(b.iter().copied().collect()),
        ])
        .unwrap();
        let ranges = [
            vec![("a".to_string(), ValueRange::between(Value::I64(10), Value::I64(80)))],
            vec![("a".to_string(), ValueRange::at_least(Value::I64(650)))],
            vec![
                ("a".to_string(), ValueRange::between(Value::I64(0), Value::I64(300))),
                ("b".to_string(), ValueRange::equals(Value::I64(4))),
            ],
            vec![],
        ];
        let mut batch = Vec::new();
        for (i, preds) in ranges.iter().enumerate() {
            let q = if i % 2 == 1 {
                BatchQuery::count(preds.clone())
            } else {
                BatchQuery::ids(preds.clone())
            };
            batch.push(q);
        }
        let pool = WorkerPool::new(2);
        for pool in [None, Some(&pool)] {
            let out = t.query_batch(&batch, pool);
            assert_eq!(out.len(), batch.len());
            for (q, res) in batch.iter().zip(out) {
                let preds: Vec<(&str, ValueRange)> = q
                    .preds
                    .iter()
                    .map(|(n, s)| (n.as_str(), *s.as_single().expect("ranges only")))
                    .collect();
                let (answer, stats) = res.unwrap();
                if q.count_only {
                    let (n, st) = t.count_with_stats(&preds, None).unwrap();
                    assert_eq!(answer, BatchAnswer::Count(n));
                    assert_eq!(stats.epoch, st.epoch);
                    assert_eq!(stats.visible_rows, st.visible_rows);
                } else {
                    let (ids, st) = t.query_with_stats(&preds, None).unwrap();
                    assert_eq!(answer, BatchAnswer::Ids(ids));
                    assert_eq!(stats.epoch, st.epoch);
                    assert_eq!(stats.visible_rows, st.visible_rows);
                    assert_eq!(stats.open_rows, st.open_rows);
                    assert_eq!(stats.tail_indexed, st.tail_indexed);
                }
            }
        }
    }

    /// A batch with an unresolvable query errors only that slot; the rest
    /// evaluate against the shared pinned snapshot.
    #[test]
    fn query_batch_isolates_resolution_errors() {
        let t = Table::new("t", &[("v", ColumnType::I64)], small_cfg()).unwrap();
        t.append_batch(vec![ints(0..600)]).unwrap();
        let batch = vec![
            BatchQuery::ids(vec![("v".into(), ValueRange::at_least(Value::I64(590)))]),
            BatchQuery::ids(vec![("nope".into(), ValueRange::equals(Value::I64(1)))]),
            BatchQuery::count(vec![("v".into(), ValueRange::equals(Value::I32(1)))]),
            BatchQuery::count(vec![("v".into(), ValueRange::at_most(Value::I64(9)))]),
        ];
        let out = t.query_batch(&batch, None);
        assert_eq!(
            out[0].as_ref().unwrap().0,
            BatchAnswer::Ids(IdList::from_sorted((590..600).collect()))
        );
        assert!(out[1].is_err(), "unknown column must error its own slot");
        assert!(out[2].is_err(), "type-mismatched bound must error its own slot");
        assert_eq!(out[3].as_ref().unwrap().0, BatchAnswer::Count(10));
    }

    #[test]
    fn empty_predicates_select_every_visible_row() {
        let t = Table::new("t", &[("v", ColumnType::U16)], small_cfg()).unwrap();
        let vals: Vec<u16> = (0..700u32).map(|i| (i % 500) as u16).collect();
        t.append_batch(vec![AnyColumn::U16(vals.into_iter().collect())]).unwrap();
        let ids = t.query(&[]).unwrap();
        assert_eq!(ids.len(), 700);
    }
}
