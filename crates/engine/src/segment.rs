//! Sealed, immutable data segments.
//!
//! A table's data is split into fixed-size segments of
//! [`EngineConfig::segment_rows`](crate::EngineConfig::segment_rows) rows.
//! Each sealed segment owns, per column, a cacheline-aligned data chunk and
//! its own secondary indexes: a [`ColumnImprints`] (the primary access
//! path, with a bounded rebuild scope — re-binning one segment never
//! touches its neighbours), a [`ZoneMap`], and optionally a lazily built,
//! byte-budgeted [`WahBitmap`] — plus an adaptive, selectivity-bucketed
//! [`PathChooser`] deciding per query which path answers.
//!
//! Sealed segments are immutable and shared via `Arc`: queries, appends and
//! the maintenance planner never copy data, they swap segment pointers.

use std::collections::HashMap;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError, RwLock};
use std::time::Instant;

use baselines::{SeqScan, WahBitmap, WahVector, ZoneMap};
use colstore::index::BuildableIndex;
use colstore::relation::AnyColumn;
use colstore::{AccessStats, Bound, CachelineSet, Column, IdList, RangeIndex, Scalar, Value};
use imprints::builder::BuildOptions;
use imprints::masks::make_masks_union;
use imprints::query;
use imprints::relation_index::{ValueRange, ValueSet};
use imprints::ColumnImprints;

use imprints::simd::{self, RefineKernel, SetKernel};

use crate::config::EngineConfig;
use crate::paths::{PathChooser, PathKind, PlanChooser, PlanKind};
use crate::persist;

/// The data payload of one sealed segment column: memory-resident, or
/// *evicted* to its durable column file with only the metadata (and the
/// indexes owning it) left in memory.
///
/// Eviction is what turns the imprint's size advantage into a memory
/// story: the per-column indexes stay resident, the data pages go, and
/// [`DataSlot::get`] faults the column back in from its file the first
/// time refinement actually needs a value. The slot can only evict once
/// [`DataSlot::mark_durable`] pinned a file — un-persisted data is never
/// dropped.
#[derive(Debug)]
struct DataSlot<T: Scalar> {
    /// `Some` while resident, `None` while evicted (lock class
    /// `segment.data`; held only for pointer swaps and the fault-in read).
    cold: RwLock<Option<Arc<Column<T>>>>,
    rows: usize,
    bytes: usize,
    /// The durable column file backing fault-in, set once persisted. A
    /// rebuilt or merged copy starts without one until the replacement
    /// segment is persisted in turn.
    file: OnceLock<PathBuf>,
    /// Data bytes faulted back in from disk over this slot's lifetime.
    faulted: AtomicU64,
}

impl<T: Scalar> DataSlot<T> {
    fn new(col: Arc<Column<T>>) -> Self {
        DataSlot {
            rows: col.len(),
            bytes: col.data_bytes(),
            cold: RwLock::new(Some(col)),
            file: OnceLock::new(),
            faulted: AtomicU64::new(0),
        }
    }

    /// A slot born evicted — the recovery path, where the manifest vouches
    /// for the file and the data is only read if a query refines into it.
    fn evicted(rows: usize, bytes: usize, file: PathBuf) -> Self {
        let slot = DataSlot {
            rows,
            bytes,
            cold: RwLock::new(None),
            file: OnceLock::new(),
            faulted: AtomicU64::new(0),
        };
        let _ = slot.file.set(file);
        slot
    }

    fn len(&self) -> usize {
        self.rows
    }

    fn data_bytes(&self) -> usize {
        self.bytes
    }

    fn is_resident(&self) -> bool {
        self.cold.read().unwrap_or_else(PoisonError::into_inner).is_some()
    }

    /// The resident column, faulting it back in from its durable file if
    /// evicted (double-checked under the write lock, so concurrent readers
    /// fault at most once).
    ///
    /// # Panics
    /// Panics if an evicted column's file can no longer be read or no
    /// longer matches its recorded geometry. The file was written and
    /// checksummed by this process (or validated at recovery); losing it
    /// mid-run is environmental damage on par with memory corruption, and
    /// the checksum turns silent bit rot into this loud stop.
    fn get(&self) -> Arc<Column<T>> {
        {
            let slot = self.cold.read().unwrap_or_else(PoisonError::into_inner);
            if let Some(col) = slot.as_ref() {
                return Arc::clone(col);
            }
        }
        let mut slot = self.cold.write().unwrap_or_else(PoisonError::into_inner);
        if let Some(col) = slot.as_ref() {
            return Arc::clone(col);
        }
        let file = self.file.get().expect("evicted column always has a durable file");
        let col = persist::read_column_file::<T>(file).unwrap_or_else(|e| {
            panic!("faulting column back in from {} failed: {e}", file.display())
        });
        assert_eq!(col.len(), self.rows, "faulted column geometry changed on disk");
        let col = Arc::new(col);
        self.faulted.fetch_add(self.bytes as u64, Ordering::Relaxed);
        *slot = Some(Arc::clone(&col));
        col
    }

    /// Pins the durable file backing this slot. First caller wins: a slot
    /// that already points at a (still valid) file keeps it.
    fn mark_durable(&self, file: PathBuf) {
        let _ = self.file.set(file);
    }

    /// Drops the resident data if a durable file backs it, returning the
    /// bytes freed (0 when not persisted or already evicted).
    fn evict(&self) -> usize {
        if self.file.get().is_none() {
            return 0;
        }
        let mut slot = self.cold.write().unwrap_or_else(PoisonError::into_inner);
        match slot.take() {
            Some(_) => self.bytes,
            None => 0,
        }
    }

    fn faulted_bytes(&self) -> u64 {
        self.faulted.load(Ordering::Relaxed)
    }

    /// A clone sharing the resident `Arc` (or the evicted state) and the
    /// durable file pointer — the shallow-clone side of a segment swap,
    /// where this column's data and file are unchanged.
    fn share(&self) -> DataSlot<T> {
        let cur = self.cold.read().unwrap_or_else(PoisonError::into_inner).clone();
        let slot = DataSlot {
            rows: self.rows,
            bytes: self.bytes,
            cold: RwLock::new(cur),
            file: OnceLock::new(),
            faulted: AtomicU64::new(self.faulted.load(Ordering::Relaxed)),
        };
        if let Some(f) = self.file.get() {
            let _ = slot.file.set(f.clone());
        }
        slot
    }
}

/// Cumulative per-column observation counters, updated lock-free by
/// concurrent readers and consumed by the maintenance planner.
#[derive(Debug, Default)]
pub struct ColumnObservations {
    /// Value comparisons spent weeding candidates on the imprint path.
    pub comparisons: AtomicU64,
    /// Of those comparisons, how many produced a match (the complement is
    /// the index's false-positive work).
    pub matches: AtomicU64,
    /// Queries evaluated against this column.
    pub queries: AtomicU64,
}

impl ColumnObservations {
    /// Observed false-positive rate of the imprint path: the fraction of
    /// fetched-and-compared values that did not match. `None` below
    /// `min_comparisons` observations.
    pub fn fp_rate(&self, min_comparisons: u64) -> Option<f64> {
        let cmp = self.comparisons.load(Ordering::Relaxed);
        if cmp < min_comparisons.max(1) {
            return None;
        }
        let m = self.matches.load(Ordering::Relaxed).min(cmp);
        Some(1.0 - m as f64 / cmp as f64)
    }

    fn carry_over(&self) -> ColumnObservations {
        ColumnObservations {
            comparisons: AtomicU64::new(self.comparisons.load(Ordering::Relaxed)),
            matches: AtomicU64::new(self.matches.load(Ordering::Relaxed)),
            queries: AtomicU64::new(self.queries.load(Ordering::Relaxed)),
        }
    }
}

/// The lazily built, byte-budgeted WAH bitmap path of one segment column.
///
/// `budget == 0` means the path is disabled by configuration (never
/// registered with the chooser). Otherwise the cell starts empty and the
/// bitmap is built — sharing the imprint's binning, as the paper's §6
/// evaluation does for fairness — the first time the chooser routes a
/// query to [`PathKind::Wah`]; a bitmap that comes out larger than the
/// budget is discarded (`Some(None)`) and the chooser's WAH slot is
/// disabled, leaving the three classic paths.
#[derive(Debug)]
struct WahSlot<T: Scalar> {
    budget: usize,
    cell: OnceLock<Option<WahBitmap<T>>>,
}

impl<T: Scalar> WahSlot<T> {
    fn new(budget: usize) -> Self {
        WahSlot { budget, cell: OnceLock::new() }
    }

    /// An empty slot with the same budget (rebuilt/merged columns re-earn
    /// their lazy build).
    fn fresh(&self) -> Self {
        WahSlot::new(self.budget)
    }

    /// A clone keeping the built (or rejected) state — the shallow-clone
    /// side of a segment swap, where this column's indexes are unchanged.
    fn clone_state(&self) -> Self {
        let cell = OnceLock::new();
        if let Some(state) = self.cell.get() {
            let _ = cell.set(state.clone());
        }
        WahSlot { budget: self.budget, cell }
    }

    /// Bytes of the built bitmap (0 when disabled, unbuilt or rejected).
    fn bytes(&self) -> usize {
        match self.cell.get() {
            Some(Some(bm)) => RangeIndex::size_bytes(bm),
            _ => 0,
        }
    }
}

/// One column of one sealed segment: aligned data plus its access paths.
#[derive(Debug)]
pub struct SegCol<T: Scalar> {
    data: DataSlot<T>,
    imprints: ColumnImprints<T>,
    zonemap: ZoneMap<T>,
    wah: WahSlot<T>,
    /// Fraction of (sampled) values that landed in the binning's overflow
    /// bins at build time — the §4.1 drift signal when binning is inherited
    /// from an older segment.
    drift: f64,
    /// Times the planner re-binned this column.
    rebuilds: u32,
    /// The refinement kernel this column's value checks run under —
    /// [`EngineConfig::refine_kernel`] resolved against the env override
    /// at seal time, so kernel choice scopes to the table that configured
    /// it instead of leaking process-wide.
    kernel: RefineKernel,
    chooser: PathChooser,
    obs: ColumnObservations,
}

impl<T: Scalar> SegCol<T> {
    /// Seals `col` into an indexed segment column. With `share_binning`
    /// and a previous segment of the same column available, the previous
    /// binning is inherited (appends never readjust borders, §4.1) and the
    /// drift against it recorded; otherwise the binning is freshly sampled.
    pub fn seal(col: Column<T>, prev: Option<&SegCol<T>>, cfg: &EngineConfig) -> Self {
        let opts = BuildOptions::default();
        let (imprints, drift) = match prev.filter(|_| cfg.share_binning) {
            Some(prev) => {
                let binning = prev.imprints.binning().clone();
                let drift = measure_drift(&binning, &prev.zonemap, col.values());
                (ColumnImprints::build_with_binning(&col, binning, opts), drift)
            }
            None => {
                let built = if cfg.build_threads > 1 {
                    imprints::parallel::build_parallel(&col, opts, cfg.build_threads)
                } else {
                    ColumnImprints::build_with(&col, opts)
                };
                (built, 0.0)
            }
        };
        let zonemap = <ZoneMap<T> as BuildableIndex<T>>::build_index(&col);
        SegCol {
            data: DataSlot::new(Arc::new(col)),
            imprints,
            zonemap,
            wah: WahSlot::new(cfg.wah_budget_bytes),
            drift,
            rebuilds: 0,
            kernel: simd::effective_kernel(cfg.refine_kernel),
            chooser: chooser_for(cfg),
            obs: ColumnObservations::default(),
        }
    }

    /// A copy of this column with freshly sampled binning over the same
    /// (shared) data — the planner's background rebuild. Learned path costs
    /// and observations reset, since the index changed under them; the WAH
    /// slot empties too (a rejected bitmap re-earns its lazy build against
    /// the new binning).
    pub fn rebuilt(&self) -> Self {
        let opts = *self.imprints.options();
        let data = self.data.get();
        let imprints = ColumnImprints::build_with(&data, opts);
        SegCol {
            data: self.data.share(),
            imprints,
            zonemap: self.zonemap.clone(),
            wah: self.wah.fresh(),
            drift: 0.0,
            rebuilds: self.rebuilds + 1,
            kernel: self.kernel,
            chooser: self.chooser.fresh_like(),
            obs: ColumnObservations::default(),
        }
    }

    /// Bins the predicate's range covers over the imprint's binning.
    /// O(log bins) — two border searches.
    fn bin_span(&self, pred: &colstore::RangePredicate<T>) -> usize {
        let binning = self.imprints.binning();
        let bins = binning.bins();
        let lo = match pred.low() {
            Bound::Unbounded => 0,
            Bound::Inclusive(l) | Bound::Exclusive(l) => binning.bin_of(*l),
        };
        let hi = match pred.high() {
            Bound::Unbounded => bins - 1,
            Bound::Inclusive(h) | Bound::Exclusive(h) => binning.bin_of(*h),
        };
        hi.saturating_sub(lo) + 1
    }

    /// The selectivity bucket of `pred` on this column: the span the
    /// predicate covers over the imprint's binning, classed by
    /// [`PathChooser::bucket_of_span`].
    fn bucket_of(&self, pred: &colstore::RangePredicate<T>) -> usize {
        let bins = self.imprints.binning().bins();
        self.chooser.bucket_of_span(self.bin_span(pred), bins)
    }

    /// The selectivity bucket of a whole value set: the terms' bin spans
    /// summed (clamped to the bin count), classed like one range of the
    /// combined width — an IN-list of k points behaves like a k-bin range.
    fn bucket_of_set(&self, preds: &[colstore::RangePredicate<T>]) -> usize {
        let bins = self.imprints.binning().bins();
        let span: usize =
            preds.iter().filter(|p| !p.is_empty_range()).map(|p| self.bin_span(p)).sum();
        self.chooser.bucket_of_span(span.clamp(1, bins), bins)
    }

    /// The WAH bitmap, built on first use and `None` once rejected for
    /// exceeding its byte budget (which also disables the chooser's WAH
    /// slot, so later queries never route here again). Callers resolve
    /// this *before* starting their cost timer: the one-off build must not
    /// enter the path's EWMA.
    fn wah_index(&self) -> Option<&WahBitmap<T>> {
        if self.wah.budget == 0 {
            return None;
        }
        let built = self.wah.cell.get_or_init(|| {
            let data = self.data.get();
            let bm = WahBitmap::build_with_binning(&data, self.imprints.binning().clone());
            (RangeIndex::size_bytes(&bm) <= self.wah.budget).then_some(bm)
        });
        if built.is_none() {
            self.chooser.disable(PathKind::Wah);
        }
        built.as_ref()
    }

    /// Evaluates a single-column predicate through the adaptively chosen
    /// access path, recording observed cost (in the predicate's
    /// selectivity bucket) and false-positive work.
    fn evaluate_adaptive(&self, pred: &colstore::RangePredicate<T>) -> (IdList, AccessStats) {
        let bucket = self.bucket_of(pred);
        let mut path = self.chooser.choose(bucket);
        if path == PathKind::Wah && self.wah_index().is_none() {
            // The lazy build just blew the budget: WAH is now disabled in
            // the chooser; route this query through a surviving path
            // without advancing the cadence again — one query, one count.
            path = self.chooser.rechoose(bucket);
        }
        // Fault evicted data in *before* the cost timer starts: the one-off
        // disk read must not enter the path's EWMA (same rule as the lazy
        // WAH build).
        let data = self.data.get();
        let t0 = Instant::now();
        let (ids, stats) = match path {
            PathKind::Imprints => {
                let (ids, istats) =
                    query::evaluate_with_kernel(&self.imprints, &data, pred, self.kernel);
                // Ids not emitted via a full line each passed the value
                // check; `ids_via_full_lines` is exact even when a partial
                // tail cacheline was emitted wholesale, so this no longer
                // undercounts matches (and inflates the planner's fp-rate).
                let via_checks = (ids.len() as u64).saturating_sub(istats.ids_via_full_lines);
                self.obs.comparisons.fetch_add(istats.access.value_comparisons, Ordering::Relaxed);
                self.obs.matches.fetch_add(via_checks, Ordering::Relaxed);
                (ids, istats.access)
            }
            PathKind::ZoneMap => self.zonemap.evaluate_with_kernel(&data, pred, self.kernel),
            PathKind::Scan => <SeqScan as BuildableIndex<T>>::build_index(&data)
                .evaluate_with_kernel(&data, pred, self.kernel),
            PathKind::Wah => self
                .wah_index()
                .expect("wah availability resolved before dispatch")
                .evaluate_with_kernel(&data, pred, self.kernel),
        };
        self.chooser.record(bucket, path, t0.elapsed().as_nanos() as u64);
        self.chooser.record_selectivity(bucket, ids.len() as u64, data.len() as u64);
        self.obs.queries.fetch_add(1, Ordering::Relaxed);
        (ids, stats)
    }

    /// Counts rows matching a single-column predicate through the
    /// adaptively chosen access path — the count twin of
    /// [`SegCol::evaluate_adaptive`], recording the same cost and
    /// false-positive observations so count-heavy workloads feed the
    /// planner and the chooser exactly like materializing queries do.
    /// Every arm reports the [`AccessStats`] its evaluate twin reports.
    fn count_adaptive(&self, pred: &colstore::RangePredicate<T>) -> (u64, AccessStats) {
        if !self.data.is_resident() {
            // Evicted cold data: answer from the resident imprint alone
            // when it is exact, leaving the data pages on disk.
            if let Some(out) = self.count_from_imprint(pred) {
                return out;
            }
        }
        let bucket = self.bucket_of(pred);
        let mut path = self.chooser.choose(bucket);
        if path == PathKind::Wah && self.wah_index().is_none() {
            path = self.chooser.rechoose(bucket);
        }
        let data = self.data.get();
        let t0 = Instant::now();
        let (n, stats) = match path {
            PathKind::Imprints => {
                let (n, istats) =
                    query::count_with_kernel(&self.imprints, &data, pred, self.kernel);
                let via_checks = n.saturating_sub(istats.ids_via_full_lines);
                self.obs.comparisons.fetch_add(istats.access.value_comparisons, Ordering::Relaxed);
                self.obs.matches.fetch_add(via_checks, Ordering::Relaxed);
                (n, istats.access)
            }
            PathKind::ZoneMap => self.zonemap.count_with_kernel(&data, pred, self.kernel),
            PathKind::Scan => <SeqScan as BuildableIndex<T>>::build_index(&data).count_with_kernel(
                &data,
                pred,
                self.kernel,
            ),
            PathKind::Wah => self
                .wah_index()
                .expect("wah availability resolved before dispatch")
                .count_with_kernel(&data, pred, self.kernel),
        };
        self.chooser.record(bucket, path, t0.elapsed().as_nanos() as u64);
        self.chooser.record_selectivity(bucket, n, data.len() as u64);
        self.obs.queries.fetch_add(1, Ordering::Relaxed);
        (n, stats)
    }

    /// Counts from the resident imprint alone — the evicted-segment fast
    /// path. `Some` exactly when every candidate cacheline is *fully*
    /// covered by the predicate's inner mask, making the imprint count
    /// exact with zero data bytes touched; `None` when any candidate line
    /// needs value refinement, in which case the caller falls through to
    /// the normal adaptive path (faulting the data back in).
    fn count_from_imprint(&self, pred: &colstore::RangePredicate<T>) -> Option<(u64, AccessStats)> {
        let words = self.imprints.rows().div_ceil(64);
        let masks = make_masks_union(self.imprints.binning(), std::slice::from_ref(pred));
        let mut cand = vec![0u64; words];
        let mut full = vec![0u64; words];
        let istats = query::classify_rows(&self.imprints, &masks, &mut cand, &mut full);
        if cand != full {
            return None;
        }
        let n: u64 = cand.iter().map(|w| u64::from(w.count_ones())).sum();
        self.chooser.record_selectivity(self.bucket_of(pred), n, self.imprints.rows() as u64);
        self.obs.queries.fetch_add(1, Ordering::Relaxed);
        Some((n, istats.access))
    }

    /// The WAH bitmap only when it was **already** built within budget.
    /// The conjunction plan never triggers the lazy build itself — a
    /// one-off build inside a timed plan would poison the
    /// [`PlanChooser`]'s cost comparison — it only reuses a bitmap the
    /// single-column chooser has already paid for.
    fn wah_ready(&self) -> Option<&WahBitmap<T>> {
        self.wah.cell.get().and_then(Option::as_ref)
    }

    /// Classifies this column's predicate for the fused conjunction plan
    /// (see [`SealedSegment::evaluate_fused`]): the imprint's candidate
    /// and fully-covered rows as row-space bit words, the WAH candidate
    /// vector when a built bitmap is available, an ordering estimate from
    /// the chooser's per-bucket selectivity history, and a boxed word
    /// checker that runs the compiled [`SetKernel`] over one 64-row word
    /// and bills this column's observations. Dispatching once per *word*
    /// (not per row) keeps the type-erasure cost off the value loop.
    fn plan_pred(&self, set: &ValueSet, words: usize) -> (Vec<u64>, PredPlan<'_>, AccessStats) {
        let preds: Vec<colstore::RangePredicate<T>> =
            set.to_predicates().expect("predicates validated against schema");
        let masks = make_masks_union(self.imprints.binning(), &preds);
        let mut cand = vec![0u64; words];
        let mut full = vec![0u64; words];
        let istats = query::classify_rows(&self.imprints, &masks, &mut cand, &mut full);
        let mut stats = istats.access;
        let rows = self.data.len() as u64;
        let hits: u64 = cand.iter().map(|w| u64::from(w.count_ones())).sum();
        let bucket = self.bucket_of_set(&preds);
        self.chooser.record_selectivity(bucket, hits, rows);
        let sel = self.chooser.selectivity(bucket).unwrap_or(1.0);
        let wah = self.wah_ready().and_then(|bm| {
            let mut probes = 0u64;
            let v = bm.candidate_vector(&preds, &mut probes);
            stats.index_probes += probes;
            v
        });
        let kernel = SetKernel::with_kernel(&preds, self.kernel);
        // Data is resolved lazily inside the checker: a conjunction whose
        // joint candidates never reach this column's value check leaves an
        // evicted column's data on disk.
        let slot = &self.data;
        let cell: OnceLock<Arc<Column<T>>> = OnceLock::new();
        let obs = &self.obs;
        let check: WordCheck<'_> = Box::new(move |w, need| {
            let values = cell.get_or_init(|| slot.get()).values();
            let start = w * 64;
            let end = (start + 64).min(values.len());
            let mm = kernel.match_mask(&values[start..end]);
            obs.comparisons.fetch_add(u64::from(need.count_ones()), Ordering::Relaxed);
            obs.matches.fetch_add(u64::from((need & mm).count_ones()), Ordering::Relaxed);
            mm
        });
        (cand, PredPlan { full, sel, wah, check }, stats)
    }

    /// Candidate row-id ranges of a whole value set: the union of each
    /// term's imprint candidates (late materialization step 1 of the
    /// per-predicate plan), plus probe statistics.
    fn candidates_set(&self, set: &ValueSet) -> (CachelineSet, AccessStats) {
        let preds: Vec<colstore::RangePredicate<T>> =
            set.to_predicates().expect("predicates validated against schema");
        let mut stats = AccessStats::default();
        let mut acc: Option<CachelineSet> = None;
        for pred in &preds {
            let (lines, istats) = query::candidate_id_ranges(&self.imprints, pred);
            stats.merge(&istats.access);
            acc = Some(match acc {
                Some(a) => a.union(&lines),
                None => lines,
            });
        }
        (acc.unwrap_or_default(), stats)
    }

    /// Materializes the ids in `ranges` whose value satisfies `set`,
    /// through the compiled [`SetKernel`] over contiguous runs, billing
    /// this column's observations and `stats`.
    fn collect_matches(
        &self,
        set: &ValueSet,
        ranges: &CachelineSet,
        stats: &mut AccessStats,
    ) -> Vec<u64> {
        let preds: Vec<colstore::RangePredicate<T>> =
            set.to_predicates().expect("predicates validated against schema");
        let kernel = SetKernel::with_kernel(&preds, self.kernel);
        let data = self.data.get();
        let values = data.values();
        let mut out = Vec::new();
        let mut cmp = 0u64;
        // `ranges` is already in row-id space (candidate_id_ranges converts
        // cacheline runs to id runs), so its runs feed the kernel directly.
        for ids in ranges.runs() {
            let end = ids.end.min(values.len() as u64);
            if ids.start < end {
                kernel.append_matches(values, ids.start..end, &mut out, &mut cmp);
            }
        }
        stats.value_comparisons += cmp;
        self.obs.comparisons.fetch_add(cmp, Ordering::Relaxed);
        self.obs.matches.fetch_add(out.len() as u64, Ordering::Relaxed);
        out
    }

    /// Keeps only the survivor ids whose value satisfies `set` — the
    /// gather-style SWAR kernel over scattered ids
    /// ([`SetKernel::filter_ids`]), billing this column's observations
    /// and `stats`.
    fn filter_survivors(&self, set: &ValueSet, ids: &mut Vec<u64>, stats: &mut AccessStats) {
        let preds: Vec<colstore::RangePredicate<T>> =
            set.to_predicates().expect("predicates validated against schema");
        let kernel = SetKernel::with_kernel(&preds, self.kernel);
        let mut cmp = 0u64;
        let data = self.data.get();
        kernel.filter_ids(data.values(), ids, &mut cmp);
        stats.value_comparisons += cmp;
        self.obs.comparisons.fetch_add(cmp, Ordering::Relaxed);
        self.obs.matches.fetch_add(ids.len() as u64, Ordering::Relaxed);
    }

    /// Recovers this column from its persisted files in `dir`. With
    /// `load_indexes`, the imprint and zonemap are read back and the data
    /// stays **evicted** — the imprint-resident restart, where column data
    /// is only faulted in when a query refines into it. When the index
    /// files are missing, corrupt, or `load_indexes` is off, the column
    /// data is read and the indexes rebuilt from scratch (the checksummed
    /// data file is the ground truth; indexes are derived state). Returns
    /// the column and whether its indexes were recovered (vs rebuilt).
    fn recover(
        dir: &Path,
        ci: usize,
        rows: usize,
        cfg: &EngineConfig,
        load_indexes: bool,
    ) -> colstore::Result<(SegCol<T>, bool)> {
        let data_file = dir.join(persist::column_file(ci));
        if load_indexes {
            if let Ok((imprints, zonemap)) = Self::read_indexes(dir, ci, rows) {
                let bytes = rows * std::mem::size_of::<T>();
                let slot = DataSlot::evicted(rows, bytes, data_file);
                return Ok((Self::from_recovered(slot, imprints, zonemap, cfg), true));
            }
        }
        let col = persist::read_column_file::<T>(&data_file)?;
        if col.len() != rows {
            return Err(colstore::Error::Corrupt(format!(
                "segment column {ci} holds {} rows, manifest says {rows}",
                col.len()
            )));
        }
        let col = SegCol::seal(col, None, cfg);
        col.data.mark_durable(data_file);
        Ok((col, false))
    }

    fn read_indexes(
        dir: &Path,
        ci: usize,
        rows: usize,
    ) -> colstore::Result<(ColumnImprints<T>, ZoneMap<T>)> {
        let mut f = persist::open_file(&dir.join(persist::imprint_file(ci)))?;
        let imprints = imprints::storage::read_index::<T, _>(&mut f)?;
        let mut f = persist::open_file(&dir.join(persist::zonemap_file(ci)))?;
        let zonemap = baselines::storage::read_zonemap::<T, _>(&mut f)?;
        if imprints.rows() != rows || zonemap.rows() != rows {
            return Err(colstore::Error::Mismatch(format!(
                "column {ci} indexes cover {}/{} rows, manifest says {rows}",
                imprints.rows(),
                zonemap.rows()
            )));
        }
        Ok((imprints, zonemap))
    }

    /// Assembles a column from recovered parts: indexes read back, data
    /// evicted, and every learned signal (drift, path costs, observations)
    /// reset — cost profiles do not survive a restart.
    fn from_recovered(
        data: DataSlot<T>,
        imprints: ColumnImprints<T>,
        zonemap: ZoneMap<T>,
        cfg: &EngineConfig,
    ) -> SegCol<T> {
        SegCol {
            data,
            imprints,
            zonemap,
            wah: WahSlot::new(cfg.wah_budget_bytes),
            drift: 0.0,
            rebuilds: 0,
            kernel: simd::effective_kernel(cfg.refine_kernel),
            chooser: chooser_for(cfg),
            obs: ColumnObservations::default(),
        }
    }
}

/// One boxed 64-row word check of the fused plan: `(word index, rows
/// still needing this predicate's check)` to the predicate's match mask
/// over that word, billing the column's comparison/match observations
/// for exactly the needed rows on the way.
type WordCheck<'a> = Box<dyn Fn(usize, u64) -> u64 + Send + Sync + 'a>;

/// Per-predicate state of the fused conjunction plan, produced by the
/// typed [`SegCol::plan_pred`] and consumed type-erased by
/// [`SealedSegment::evaluate_fused`]: which rows the predicate's imprint
/// guarantees (`full`), the optional WAH candidate vector for run-wise
/// intersection, an ordering estimate, and the word checker.
struct PredPlan<'a> {
    /// Rows guaranteed to match (their cacheline's imprint sits entirely
    /// inside the predicate's inner mask) — never value-checked.
    full: Vec<u64>,
    /// Estimated selectivity (matching fraction; lower = more selective)
    /// from the chooser's per-bucket history, for refinement ordering.
    sel: f64,
    /// The WAH candidate vector when this column's bitmap is built.
    wah: Option<WahVector>,
    check: WordCheck<'a>,
}

/// The chooser a freshly sealed segment column starts from: the three
/// classic paths, plus WAH when the configuration budgets it, bucketed by
/// [`EngineConfig::path_buckets`].
fn chooser_for(cfg: &EngineConfig) -> PathChooser {
    if cfg.wah_budget_bytes > 0 {
        PathChooser::new(&PathKind::ALL, cfg.path_buckets)
    } else {
        PathChooser::new(&PathKind::CLASSIC, cfg.path_buckets)
    }
}

/// Fraction of (sampled) values falling *outside the binning's sampled
/// domain* — strictly below the first border or strictly above the last
/// real border (the §4.1 drift signal for inherited binnings).
///
/// Measuring by bin index (`bin == 0 || bin == bins - 1`) is wrong at both
/// ends: the bin count is rounded up to a power of two, so a
/// low-cardinality binning's top *reachable* bin sits far below `bins - 1`
/// and true overflow there went unnoticed, while a column with exactly
/// `bins - 1` distinct values (or any 64-bin equal-height binning) keeps
/// its perfectly in-domain maximum values in bin `bins - 1` — reporting
/// near-1.0 drift forever on skewed-to-max data and sending the planner
/// into a rebuild loop (each rebuild resamples the same borders and the
/// next seal re-reports the same phantom drift). Comparing against the
/// border values directly is exact for every bin count.
///
/// One ambiguity remains in the borders alone: a *real* border equal to
/// the type's total-order maximum (a column legitimately holding the
/// domain maximum, or NaN — the float total-order maximum — as a sentinel
/// marker) is indistinguishable from the unused-slot sentinel, so values
/// near the top would read as phantom overflow. The previous segment's
/// zonemap resolves it for free: its zone bounds give the exact min/max
/// of the data the chain last held, and the in-domain range is the union
/// of the border span and that data span — widening only ever suppresses
/// phantom drift, never true domain shifts, since inherited borders were
/// fitted to (an ancestor of) exactly that data.
fn measure_drift<T: Scalar>(
    binning: &imprints::Binning<T>,
    prev_zonemap: &ZoneMap<T>,
    values: &[T],
) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let borders = binning.borders();
    let mut lo = borders[0];
    // The largest non-sentinel border (unused tail entries hold the domain
    // maximum): the top of the sampled domain. A domain-max border means
    // nothing can sit above it — then only underflow can drift.
    let max = T::MAX_VALUE;
    let mut hi =
        *borders[..binning.bins() - 1].iter().rev().find(|b| b.lt_total(&max)).unwrap_or(&max);
    for z in 0..prev_zonemap.zone_count() {
        let (zmin, zmax) = prev_zonemap.zone_bounds(z);
        if zmin.lt_total(&lo) {
            lo = zmin;
        }
        if hi.lt_total(&zmax) {
            hi = zmax;
        }
    }
    // Sample every 64th value: the signal is a fraction, not a count.
    let mut seen = 0u64;
    let mut out = 0u64;
    for v in values.iter().step_by(64) {
        seen += 1;
        if v.lt_total(&lo) || hi.lt_total(v) {
            out += 1;
        }
    }
    out as f64 / seen.max(1) as f64
}

/// A [`SegCol`] of whichever scalar type its column holds.
#[derive(Debug)]
pub enum AnySegCol {
    /// `i8` column segment.
    I8(SegCol<i8>),
    /// `u8` column segment.
    U8(SegCol<u8>),
    /// `i16` column segment.
    I16(SegCol<i16>),
    /// `u16` column segment.
    U16(SegCol<u16>),
    /// `i32` column segment.
    I32(SegCol<i32>),
    /// `u32` column segment.
    U32(SegCol<u32>),
    /// `i64` column segment.
    I64(SegCol<i64>),
    /// `u64` column segment.
    U64(SegCol<u64>),
    /// `f32` column segment.
    F32(SegCol<f32>),
    /// `f64` column segment.
    F64(SegCol<f64>),
}

macro_rules! seg_dispatch {
    ($any:expr, $s:ident => $body:expr) => {
        match $any {
            AnySegCol::I8($s) => $body,
            AnySegCol::U8($s) => $body,
            AnySegCol::I16($s) => $body,
            AnySegCol::U16($s) => $body,
            AnySegCol::I32($s) => $body,
            AnySegCol::U32($s) => $body,
            AnySegCol::I64($s) => $body,
            AnySegCol::U64($s) => $body,
            AnySegCol::F32($s) => $body,
            AnySegCol::F64($s) => $body,
        }
    };
}

macro_rules! seal_pairing {
    ($data:expr, $prev:expr, $cfg:expr; $($v:ident),+) => {
        match $data {
            $(AnyColumn::$v(c) => {
                let prev = match $prev {
                    Some(AnySegCol::$v(p)) => Some(p),
                    _ => None,
                };
                AnySegCol::$v(SegCol::seal(c, prev, $cfg))
            })+
        }
    };
}

impl AnySegCol {
    /// Seals a typed column buffer (see [`SegCol::seal`]).
    pub fn seal(data: AnyColumn, prev: Option<&AnySegCol>, cfg: &EngineConfig) -> AnySegCol {
        seal_pairing!(data, prev, cfg; I8, U8, I16, U16, I32, U32, I64, U64, F32, F64)
    }

    /// Background-rebuilt copy (fresh binning, shared data).
    pub fn rebuilt(&self) -> AnySegCol {
        match self {
            AnySegCol::I8(s) => AnySegCol::I8(s.rebuilt()),
            AnySegCol::U8(s) => AnySegCol::U8(s.rebuilt()),
            AnySegCol::I16(s) => AnySegCol::I16(s.rebuilt()),
            AnySegCol::U16(s) => AnySegCol::U16(s.rebuilt()),
            AnySegCol::I32(s) => AnySegCol::I32(s.rebuilt()),
            AnySegCol::U32(s) => AnySegCol::U32(s.rebuilt()),
            AnySegCol::I64(s) => AnySegCol::I64(s.rebuilt()),
            AnySegCol::U64(s) => AnySegCol::U64(s.rebuilt()),
            AnySegCol::F32(s) => AnySegCol::F32(s.rebuilt()),
            AnySegCol::F64(s) => AnySegCol::F64(s.rebuilt()),
        }
    }

    /// Rows in the segment column.
    pub fn rows(&self) -> usize {
        seg_dispatch!(self, s => s.data.len())
    }

    /// The value at local row `id` (faults evicted data back in).
    pub fn value(&self, id: usize) -> Option<Value> {
        seg_dispatch!(self, s => s.data.get().get(id).map(Scalar::into_value))
    }

    /// Index bytes (imprint + zonemap + built WAH bitmap) for storage
    /// accounting.
    pub fn index_bytes(&self) -> usize {
        seg_dispatch!(self, s => {
            RangeIndex::size_bytes(&s.imprints) + s.zonemap.size_bytes() + s.wah.bytes()
        })
    }

    /// Bytes of the built WAH bitmap path (0 when disabled, not yet built,
    /// or rejected for exceeding its byte budget).
    pub fn wah_bytes(&self) -> usize {
        seg_dispatch!(self, s => s.wah.bytes())
    }

    /// The WAH path's lazy-build state: `None` until the chooser first
    /// explored it (or when disabled by configuration), then `Some(true)`
    /// if the bitmap was built within budget, `Some(false)` if it was
    /// rejected and the column fell back to the three classic paths.
    pub fn wah_built(&self) -> Option<bool> {
        seg_dispatch!(self, s => s.wah.cell.get().map(Option::is_some))
    }

    /// Raw data bytes (resident or not — the column's logical size).
    pub fn data_bytes(&self) -> usize {
        seg_dispatch!(self, s => s.data.data_bytes())
    }

    /// `true` while the data payload is memory-resident (not evicted).
    pub fn data_resident(&self) -> bool {
        seg_dispatch!(self, s => s.data.is_resident())
    }

    /// Drops the resident data if a durable file backs it; returns the
    /// bytes freed.
    pub fn evict(&self) -> usize {
        seg_dispatch!(self, s => s.data.evict())
    }

    /// Data bytes faulted back in from disk over this column's lifetime.
    pub fn faulted_bytes(&self) -> u64 {
        seg_dispatch!(self, s => s.data.faulted_bytes())
    }

    /// Pins the durable column file backing eviction and fault-in.
    pub(crate) fn mark_durable(&self, file: PathBuf) {
        seg_dispatch!(self, s => s.data.mark_durable(file))
    }

    /// Serializes the column data (faulting it in if evicted).
    pub(crate) fn write_data_to(&self, mut out: &mut dyn Write) -> colstore::Result<()> {
        seg_dispatch!(self, s => colstore::storage::write_column(s.data.get().as_ref(), &mut out))
    }

    /// Serializes the column's imprint index.
    pub(crate) fn write_index_to(&self, mut out: &mut dyn Write) -> colstore::Result<()> {
        seg_dispatch!(self, s => imprints::storage::write_index(&s.imprints, &mut out))
    }

    /// Serializes the column's zonemap.
    pub(crate) fn write_zonemap_to(&self, mut out: &mut dyn Write) -> colstore::Result<()> {
        seg_dispatch!(self, s => baselines::storage::write_zonemap(&s.zonemap, &mut out))
    }

    /// Recovers one column of type `ty` from its persisted files (see
    /// [`SegCol::recover`]). The bool reports indexes recovered vs rebuilt.
    pub(crate) fn recover(
        ty: colstore::ColumnType,
        dir: &Path,
        ci: usize,
        rows: usize,
        cfg: &EngineConfig,
        load_indexes: bool,
    ) -> colstore::Result<(AnySegCol, bool)> {
        use colstore::ColumnType as Ty;
        macro_rules! arm {
            ($v:ident, $t:ty) => {{
                let (col, recovered) = SegCol::<$t>::recover(dir, ci, rows, cfg, load_indexes)?;
                (AnySegCol::$v(col), recovered)
            }};
        }
        Ok(match ty {
            Ty::I8 => arm!(I8, i8),
            Ty::U8 => arm!(U8, u8),
            Ty::I16 => arm!(I16, i16),
            Ty::U16 => arm!(U16, u16),
            Ty::I32 => arm!(I32, i32),
            Ty::U32 => arm!(U32, u32),
            Ty::I64 => arm!(I64, i64),
            Ty::U64 => arm!(U64, u64),
            Ty::F32 => arm!(F32, f32),
            Ty::F64 => arm!(F64, f64),
        })
    }

    /// Imprint saturation (mean bits-set fraction; 1.0 filters nothing).
    pub fn saturation(&self) -> f64 {
        seg_dispatch!(self, s => s.imprints.saturation())
    }

    /// Overflow-bin drift against the inherited binning, measured at seal.
    pub fn drift(&self) -> f64 {
        seg_dispatch!(self, s => s.drift)
    }

    /// Times the planner re-binned this column.
    pub fn rebuilds(&self) -> u32 {
        seg_dispatch!(self, s => s.rebuilds)
    }

    /// The observation counters feeding the planner.
    pub fn observations(&self) -> &ColumnObservations {
        seg_dispatch!(self, s => &s.obs)
    }

    /// The path chooser (exposed for reporting).
    pub fn chooser(&self) -> &PathChooser {
        seg_dispatch!(self, s => &s.chooser)
    }

    fn evaluate_adaptive(&self, range: &ValueRange) -> (IdList, AccessStats) {
        seg_dispatch!(self, s => {
            let pred = range.to_predicate().expect("predicate validated against schema");
            s.evaluate_adaptive(&pred)
        })
    }

    fn count_adaptive(&self, range: &ValueRange) -> (u64, AccessStats) {
        seg_dispatch!(self, s => {
            let pred = range.to_predicate().expect("predicate validated against schema");
            s.count_adaptive(&pred)
        })
    }

    /// Bills one query against this column's observation counters. The
    /// conjunction plans call this once per touched column *up front*, so
    /// the planner and `path_report` see multi-predicate traffic on every
    /// column it touches — even ones an early-exit never value-checks.
    fn note_query(&self) {
        seg_dispatch!(self, s => s.obs.queries.fetch_add(1, Ordering::Relaxed));
    }

    fn plan_pred(&self, set: &ValueSet, words: usize) -> (Vec<u64>, PredPlan<'_>, AccessStats) {
        seg_dispatch!(self, s => s.plan_pred(set, words))
    }

    fn candidates_set(&self, set: &ValueSet) -> (CachelineSet, AccessStats) {
        seg_dispatch!(self, s => s.candidates_set(set))
    }

    fn collect_matches(
        &self,
        set: &ValueSet,
        ranges: &CachelineSet,
        stats: &mut AccessStats,
    ) -> Vec<u64> {
        seg_dispatch!(self, s => s.collect_matches(set, ranges, stats))
    }

    fn filter_survivors(&self, set: &ValueSet, ids: &mut Vec<u64>, stats: &mut AccessStats) {
        seg_dispatch!(self, s => s.filter_survivors(set, ids, stats))
    }

    /// Merges the same column of several adjacent segments into one
    /// freshly indexed column: data concatenated, bins re-sampled **once**
    /// over the combined values, imprint and zonemap rebuilt. Path costs
    /// and observations start from scratch — the merged segment's cost
    /// profile is nothing like its parts', so inheriting their per-segment
    /// estimates would mislead the chooser (see
    /// [`PathChooser::reset`](crate::paths::PathChooser::reset)).
    fn merged(parts: &[&AnySegCol], cfg: &EngineConfig) -> AnySegCol {
        macro_rules! arm {
            ($v:ident) => {{
                // Faults evicted parts back in: a merge reads every value.
                let typed: Vec<Arc<Column<_>>> = parts
                    .iter()
                    .map(|p| match p {
                        AnySegCol::$v(s) => s.data.get(),
                        _ => unreachable!("merging segments with mismatched column types"),
                    })
                    .collect();
                let refs: Vec<&Column<_>> = typed.iter().map(Arc::as_ref).collect();
                AnySegCol::$v(SegCol::seal(Column::concat(&refs), None, cfg))
            }};
        }
        match parts.first().expect("merge needs at least one segment") {
            AnySegCol::I8(_) => arm!(I8),
            AnySegCol::U8(_) => arm!(U8),
            AnySegCol::I16(_) => arm!(I16),
            AnySegCol::U16(_) => arm!(U16),
            AnySegCol::I32(_) => arm!(I32),
            AnySegCol::U32(_) => arm!(U32),
            AnySegCol::I64(_) => arm!(I64),
            AnySegCol::U64(_) => arm!(U64),
            AnySegCol::F32(_) => arm!(F32),
            AnySegCol::F64(_) => arm!(F64),
        }
    }
}

/// One request of a shared segment sweep (see
/// [`SealedSegment::evaluate_batch`]): resolved predicates plus whether the
/// caller wants ids or only a count.
#[derive(Debug, Clone, Copy)]
pub struct SegBatchQuery<'a> {
    /// Resolved `(column index, value set)` predicates.
    pub preds: &'a [(usize, ValueSet)],
    /// `true` evaluates the predicates as a disjunction (`OR` group)
    /// instead of the default conjunction.
    pub any: bool,
    /// `true` counts matches instead of materializing ids.
    pub count_only: bool,
}

/// The per-segment answer of one [`SegBatchQuery`].
#[derive(Debug, Clone, PartialEq)]
pub enum SegBatchAnswer {
    /// Segment-local matching row ids (a materializing query).
    Ids(IdList),
    /// Matching row count (a count-only query).
    Count(u64),
}

/// An immutable, indexed run of `rows` consecutive table rows starting at
/// global row id `base`.
#[derive(Debug)]
pub struct SealedSegment {
    base: u64,
    rows: usize,
    cols: Vec<AnySegCol>,
    /// Learned plan costs per touched column set (sorted column indices):
    /// one [`PlanChooser`] arbitrating fused vs per-predicate evaluation
    /// for each distinct conjunction shape this segment has seen. Guarded
    /// by a short-held mutex (lock class `segment.plans`); the choosers
    /// themselves are lock-free once handed out.
    plans: Mutex<HashMap<Vec<usize>, Arc<PlanChooser>>>,
    /// [`EngineConfig::conjunction_planning`] at seal time: `false` pins
    /// every multi-predicate query to the per-predicate plan.
    conjunction_planning: bool,
    /// The durable segment-directory name under the table's storage root,
    /// set once the segment is persisted (or recovered). Empty for a
    /// memory-only segment, whose data is consequently never evictable.
    durable: OnceLock<String>,
}

impl SealedSegment {
    /// Seals one segment's column buffers. `prev` is the previously sealed
    /// segment (for binning inheritance).
    pub fn seal(
        base: u64,
        bufs: Vec<AnyColumn>,
        prev: Option<&SealedSegment>,
        cfg: &EngineConfig,
    ) -> SealedSegment {
        let rows = bufs.first().map_or(0, AnyColumn::len);
        debug_assert!(bufs.iter().all(|b| b.len() == rows), "ragged segment buffers");
        let cols = bufs
            .into_iter()
            .enumerate()
            .map(|(i, buf)| AnySegCol::seal(buf, prev.map(|p| &p.cols[i]), cfg))
            .collect();
        SealedSegment {
            base,
            rows,
            cols,
            plans: Mutex::new(HashMap::new()),
            conjunction_planning: cfg.conjunction_planning,
            durable: OnceLock::new(),
        }
    }

    /// Merges `parts` — adjacent sealed segments in ascending base order —
    /// into one segment covering their combined row range. Per column, the
    /// data is concatenated and the index rebuilt with **one** fresh
    /// binning sample over all merged values, which is the whole point of
    /// tiering: N per-segment index overheads (bin dictionaries, headers,
    /// run breaks at segment boundaries) collapse into one, and bins fitted
    /// to the union replace bins inherited segment-by-segment.
    ///
    /// Row ids are preserved exactly: the merged segment starts at
    /// `parts[0].base()` and keeps every row in order, so readers observe
    /// no missing or duplicate ids across the swap.
    ///
    /// # Panics
    /// Panics if `parts` is empty or (in debug builds) not contiguous.
    pub fn merge(parts: &[Arc<SealedSegment>], cfg: &EngineConfig) -> SealedSegment {
        let first = parts.first().expect("merge needs at least one segment");
        debug_assert!(
            parts.windows(2).all(|w| w[0].base + w[0].rows as u64 == w[1].base),
            "merged segments must be adjacent and in ascending base order"
        );
        let base = first.base;
        let rows = parts.iter().map(|p| p.rows).sum();
        let cols = (0..first.cols.len())
            .map(|ci| {
                let col_parts: Vec<&AnySegCol> = parts.iter().map(|p| &p.cols[ci]).collect();
                AnySegCol::merged(&col_parts, cfg)
            })
            .collect();
        SealedSegment {
            base,
            rows,
            cols,
            plans: Mutex::new(HashMap::new()),
            conjunction_planning: cfg.conjunction_planning,
            durable: OnceLock::new(),
        }
    }

    /// Copy of this segment with every column in `rebuild` re-binned
    /// (fresh sampling); the other columns keep their indexes, cost models
    /// and observation counters.
    pub fn with_rebuilt_columns(&self, rebuild: &[usize]) -> SealedSegment {
        let cols = self
            .cols
            .iter()
            .enumerate()
            .map(|(i, c)| if rebuild.contains(&i) { c.rebuilt() } else { c.shallow_clone() })
            .collect();
        SealedSegment {
            base: self.base,
            rows: self.rows,
            cols,
            // Rebuilt indexes change plan costs; learned plan estimates
            // start over (the per-path choosers already reset likewise).
            plans: Mutex::new(HashMap::new()),
            conjunction_planning: self.conjunction_planning,
            durable: OnceLock::new(),
        }
    }

    /// First global row id covered.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Rows in the segment.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// The per-column structures.
    pub fn columns(&self) -> &[AnySegCol] {
        &self.cols
    }

    /// The durable segment-directory name, once persisted or recovered.
    pub fn durable_name(&self) -> Option<&str> {
        self.durable.get().map(String::as_str)
    }

    /// Records that this segment was persisted as directory `name` under
    /// `dir`, pinning each column's durable data file. First caller wins.
    pub(crate) fn mark_durable(&self, name: &str, dir: &Path) {
        for (ci, col) in self.cols.iter().enumerate() {
            col.mark_durable(dir.join(persist::column_file(ci)));
        }
        let _ = self.durable.set(name.to_string());
    }

    /// Memory-resident data bytes across this segment's columns.
    pub fn data_bytes_resident(&self) -> usize {
        self.cols.iter().filter(|c| c.data_resident()).map(AnySegCol::data_bytes).sum()
    }

    /// Evicted (on-disk only) data bytes across this segment's columns.
    pub fn data_bytes_evicted(&self) -> usize {
        self.cols.iter().filter(|c| !c.data_resident()).map(AnySegCol::data_bytes).sum()
    }

    /// `true` while every column's data payload is memory-resident.
    pub fn data_resident(&self) -> bool {
        self.cols.iter().all(AnySegCol::data_resident)
    }

    /// Evicts every persisted column's data, keeping the imprints and
    /// zonemaps resident; returns the bytes freed (0 when the segment was
    /// never persisted).
    pub fn evict(&self) -> usize {
        self.cols.iter().map(AnySegCol::evict).sum()
    }

    /// Data bytes faulted back in from disk over this segment's lifetime.
    pub fn faulted_bytes(&self) -> u64 {
        self.cols.iter().map(AnySegCol::faulted_bytes).sum()
    }

    /// Recovers a sealed segment from its durable directory as listed in
    /// the table manifest. Returns the segment plus how many columns came
    /// back with recovered indexes vs rebuilt ones (see
    /// [`SegCol::recover`] for the per-column decision).
    pub(crate) fn recover(
        base: u64,
        rows: usize,
        types: &[colstore::ColumnType],
        name: &str,
        dir: &Path,
        cfg: &EngineConfig,
        load_indexes: bool,
    ) -> colstore::Result<(SealedSegment, usize, usize)> {
        let mut recovered = 0;
        let mut rebuilt = 0;
        let mut cols = Vec::with_capacity(types.len());
        for (ci, &ty) in types.iter().enumerate() {
            let (col, rec) = AnySegCol::recover(ty, dir, ci, rows, cfg, load_indexes)?;
            if rec {
                recovered += 1;
            } else {
                rebuilt += 1;
            }
            cols.push(col);
        }
        let seg = SealedSegment {
            base,
            rows,
            cols,
            plans: Mutex::new(HashMap::new()),
            conjunction_planning: cfg.conjunction_planning,
            durable: OnceLock::new(),
        };
        let _ = seg.durable.set(name.to_string());
        Ok((seg, recovered, rebuilt))
    }

    /// Evaluates a conjunction of (column index, value set) predicates
    /// over this segment, returning segment-local ids.
    ///
    /// A single one-range predicate takes the adaptive single-column path
    /// (the [`PathChooser`] arbitrating imprints / zonemap / scan / WAH);
    /// everything else — multi-term sets and multi-predicate conjunctions —
    /// goes through the conjunction planner, where a per-shape
    /// [`PlanChooser`] arbitrates the fused row-space plan against the
    /// per-predicate candidate-intersection plan by observed cost.
    pub fn evaluate(&self, preds: &[(usize, ValueSet)]) -> (IdList, AccessStats) {
        match preds {
            [] => {
                let ids = IdList::from_sorted((0..self.rows as u64).collect());
                (ids, AccessStats::default())
            }
            [(col, set)] if set.as_single().is_some() => {
                let range = set.as_single().expect("checked single");
                self.cols[*col].evaluate_adaptive(range)
            }
            _ => self.evaluate_multi(preds),
        }
    }

    /// Evaluates the predicates as a **disjunction** (`OR` group): the
    /// union of each predicate's own adaptively evaluated result. Each arm
    /// rides its column's best single-column path, so an OR never costs
    /// more than the sum of its arms; an empty group matches nothing (the
    /// identity of `OR`), unlike the empty *conjunction* which matches
    /// everything.
    pub fn evaluate_any(&self, preds: &[(usize, ValueSet)]) -> (IdList, AccessStats) {
        let mut stats = AccessStats::default();
        let mut acc = IdList::new();
        for pred in preds {
            let (ids, s) = self.evaluate(std::slice::from_ref(pred));
            stats.merge(&s);
            acc = acc.union(&ids);
        }
        (acc, stats)
    }

    /// The learned plan chooser of one conjunction shape (the sorted set
    /// of touched columns), created on first sight.
    fn plan_chooser(&self, preds: &[(usize, ValueSet)]) -> Arc<PlanChooser> {
        let mut key: Vec<usize> = preds.iter().map(|(c, _)| *c).collect();
        key.sort_unstable();
        let mut plans = self.plans.lock().unwrap_or_else(PoisonError::into_inner);
        Arc::clone(plans.entry(key).or_default())
    }

    /// The conjunction planner: bills every touched column's query counter
    /// up front (early exits must not hide traffic from the maintenance
    /// planner), then lets the shape's [`PlanChooser`] pick fused or
    /// per-predicate evaluation and records the observed cost.
    fn evaluate_multi(&self, preds: &[(usize, ValueSet)]) -> (IdList, AccessStats) {
        for (col, _) in preds {
            self.cols[*col].note_query();
        }
        let chooser = self.conjunction_planning.then(|| self.plan_chooser(preds));
        let plan = chooser.as_ref().map_or(PlanKind::PerPred, |c| c.choose());
        let t0 = Instant::now();
        let out = match plan {
            PlanKind::Fused => self.evaluate_fused(preds),
            PlanKind::PerPred => self.evaluate_per_pred(preds),
        };
        if let Some(c) = chooser {
            c.record(plan, t0.elapsed().as_nanos() as u64);
        }
        out
    }

    /// The **fused** conjunction plan: every predicate's imprint is
    /// classified into row-space bit words first ([`query::classify_rows`]
    /// behind a union mask per predicate), candidate words are ANDed
    /// across all predicates — and, where columns have built WAH bitmaps,
    /// their candidate vectors are ANDed run-wise without decompression
    /// and folded in — so no value is fetched before *every* index has
    /// had its say. Surviving words are refined with the compiled SWAR
    /// [`SetKernel`]s in ascending estimated-selectivity order, skipping
    /// rows a predicate's imprint already guarantees (`full` words) and
    /// short-circuiting a word as soon as it empties.
    fn evaluate_fused(&self, preds: &[(usize, ValueSet)]) -> (IdList, AccessStats) {
        let words = self.rows.div_ceil(64);
        let mut stats = AccessStats::default();
        let mut joint: Option<Vec<u64>> = None;
        let mut wah_acc: Option<WahVector> = None;
        let mut plans: Vec<PredPlan<'_>> = Vec::with_capacity(preds.len());
        for (col, set) in preds {
            let (cand, plan, s) = self.cols[*col].plan_pred(set, words);
            stats.merge(&s);
            wah_acc = match (wah_acc, &plan.wah) {
                (Some(a), Some(b)) => Some(a.and(b)),
                (None, Some(b)) => Some(b.clone()),
                (a, None) => a,
            };
            plans.push(plan);
            let empty = match joint.as_mut() {
                Some(j) => {
                    let mut any = 0u64;
                    for (jw, cw) in j.iter_mut().zip(&cand) {
                        *jw &= cw;
                        any |= *jw;
                    }
                    any == 0
                }
                None => {
                    let empty = cand.iter().all(|&w| w == 0);
                    joint = Some(cand);
                    empty
                }
            };
            if empty {
                return (IdList::new(), stats);
            }
        }
        let mut joint = joint.unwrap_or_default();
        if let Some(v) = &wah_acc {
            // One materialization of the run-wise AND, folded into the
            // joint candidate words. Sound for any subset of predicates:
            // each candidate vector is a superset of its predicate's
            // matches, so their intersection still covers the conjunction.
            let mut ww = vec![0u64; words];
            stats.index_probes += v.or_into(&mut ww);
            for (jw, w) in joint.iter_mut().zip(&ww) {
                *jw &= w;
            }
        }
        // Most selective predicate first: its checks empty words fastest,
        // so later (wider) predicates see the fewest surviving rows.
        plans.sort_by(|a, b| a.sel.total_cmp(&b.sel));
        let mut out = Vec::new();
        for (w, &jw) in joint.iter().enumerate() {
            if jw == 0 {
                continue;
            }
            let mut cur = jw;
            let mut all_full = jw;
            for p in &plans {
                all_full &= p.full[w];
            }
            if cur != all_full {
                stats.lines_fetched += 1;
                for p in &plans {
                    let need = cur & !p.full[w];
                    if need == 0 {
                        continue;
                    }
                    let mm = (p.check)(w, need);
                    stats.value_comparisons += u64::from(need.count_ones());
                    cur &= p.full[w] | mm;
                    if cur == 0 {
                        break;
                    }
                }
            }
            let base = w as u64 * 64;
            while cur != 0 {
                out.push(base + u64::from(cur.trailing_zeros()));
                cur &= cur - 1;
            }
        }
        (IdList::from_sorted(out), stats)
    }

    /// The **per-predicate** fallback plan (and the `multipred` bench
    /// baseline): per-column imprint candidate ranges intersected in
    /// cacheline space, the first predicate materialized with the compiled
    /// [`SetKernel`] over the surviving contiguous runs, every further
    /// predicate weeding the scattered survivors with the gather-style
    /// SWAR kernel ([`SetKernel::filter_ids`]) — no boxed per-row
    /// matchers anywhere.
    fn evaluate_per_pred(&self, preds: &[(usize, ValueSet)]) -> (IdList, AccessStats) {
        let mut stats = AccessStats::default();
        let mut joint: Option<CachelineSet> = None;
        for (col, set) in preds {
            let (cands, s) = self.cols[*col].candidates_set(set);
            stats.merge(&s);
            joint = Some(match joint {
                Some(j) => j.intersect(&cands),
                None => cands,
            });
            if joint.as_ref().is_some_and(CachelineSet::is_empty) {
                return (IdList::new(), stats);
            }
        }
        let joint = joint.expect("at least one predicate");
        let mut ids: Vec<u64> = Vec::new();
        for (i, (col, set)) in preds.iter().enumerate() {
            if i == 0 {
                ids = self.cols[*col].collect_matches(set, &joint, &mut stats);
            } else {
                self.cols[*col].filter_survivors(set, &mut ids, &mut stats);
            }
            if ids.is_empty() {
                break;
            }
        }
        (IdList::from_sorted(ids), stats)
    }

    /// Evaluates many independent queries in **one shared sweep over this
    /// segment** — the serving layer's batched dispatch unit. The win is
    /// locality and dispatch amortization: the segment's columns, imprints
    /// and bin dictionaries are touched once and stay cache-hot while
    /// every queued predicate is answered against them, instead of each
    /// query paying its own cold walk of the sealed list; on the worker
    /// pool this is also one task per segment per *batch* rather than per
    /// query. Each query still routes through the adaptive path chooser
    /// (and records its observations) exactly as if issued alone, so
    /// batching never changes answers or planner signals — only the order
    /// work is scheduled in.
    pub fn evaluate_batch(&self, queries: &[SegBatchQuery]) -> Vec<(SegBatchAnswer, AccessStats)> {
        queries
            .iter()
            .map(|q| match (q.count_only, q.any) {
                (true, false) => {
                    let (n, stats) = self.count(q.preds);
                    (SegBatchAnswer::Count(n), stats)
                }
                (true, true) => {
                    let (ids, stats) = self.evaluate_any(q.preds);
                    (SegBatchAnswer::Count(ids.len() as u64), stats)
                }
                (false, false) => {
                    let (ids, stats) = self.evaluate(q.preds);
                    (SegBatchAnswer::Ids(ids), stats)
                }
                (false, true) => {
                    let (ids, stats) = self.evaluate_any(q.preds);
                    (SegBatchAnswer::Ids(ids), stats)
                }
            })
            .collect()
    }

    /// Counts matching rows without materializing ids. A single one-range
    /// predicate takes the adaptive path (same [`PathChooser`] and
    /// observation recording as [`SealedSegment::evaluate`], with the
    /// imprint count kernel on the imprint path); conjunctions and
    /// multi-term sets materialize internally.
    pub fn count(&self, preds: &[(usize, ValueSet)]) -> (u64, AccessStats) {
        match preds {
            [] => (self.rows as u64, AccessStats::default()),
            [(col, set)] if set.as_single().is_some() => {
                let range = set.as_single().expect("checked single");
                self.cols[*col].count_adaptive(range)
            }
            _ => {
                let (ids, stats) = self.evaluate_multi(preds);
                (ids.len() as u64, stats)
            }
        }
    }
}

impl AnySegCol {
    /// Clone sharing data `Arc`s and *rebuilding nothing* — used when a
    /// sibling column of the same segment is replaced. Index structures are
    /// cloned (they are a few percent of the data); observation counters
    /// and learned path costs carry over, since this column's index is
    /// unchanged and the planner must keep seeing its accumulated signal.
    fn shallow_clone(&self) -> AnySegCol {
        macro_rules! arm {
            ($v:ident, $s:expr) => {
                AnySegCol::$v(SegCol {
                    data: $s.data.share(),
                    imprints: $s.imprints.clone(),
                    zonemap: $s.zonemap.clone(),
                    wah: $s.wah.clone_state(),
                    drift: $s.drift,
                    rebuilds: $s.rebuilds,
                    kernel: $s.kernel,
                    chooser: $s.chooser.carry_over(),
                    obs: $s.obs.carry_over(),
                })
            };
        }
        match self {
            AnySegCol::I8(s) => arm!(I8, s),
            AnySegCol::U8(s) => arm!(U8, s),
            AnySegCol::I16(s) => arm!(I16, s),
            AnySegCol::U16(s) => arm!(U16, s),
            AnySegCol::I32(s) => arm!(I32, s),
            AnySegCol::U32(s) => arm!(U32, s),
            AnySegCol::I64(s) => arm!(I64, s),
            AnySegCol::U64(s) => arm!(U64, s),
            AnySegCol::F32(s) => arm!(F32, s),
            AnySegCol::F64(s) => arm!(F64, s),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use colstore::Column;

    fn cfg() -> EngineConfig {
        EngineConfig { segment_rows: 1024, ..Default::default() }
    }

    /// One single-range predicate — the shape every pre-`ValueSet` test
    /// used.
    fn q(col: usize, range: ValueRange) -> (usize, ValueSet) {
        (col, ValueSet::range(range))
    }

    fn seal_i64(values: Vec<i64>) -> SealedSegment {
        let col: Column<i64> = Column::from(values);
        SealedSegment::seal(0, vec![AnyColumn::I64(col)], None, &cfg())
    }

    fn oracle(values: &[i64], lo: i64, hi: i64) -> Vec<u64> {
        values
            .iter()
            .enumerate()
            .filter(|(_, v)| (lo..=hi).contains(*v))
            .map(|(i, _)| i as u64)
            .collect()
    }

    /// Registered paths of a column's chooser must all have been measured.
    fn assert_explored(col: &AnySegCol) {
        let est = col.chooser().estimates();
        for p in col.chooser().paths() {
            assert!(est[p.slot()].is_some(), "{} never explored", p.name());
        }
    }

    #[test]
    fn single_predicate_matches_oracle_on_every_path() {
        let values: Vec<i64> = (0..4096).map(|i| (i * 37) % 500).collect();
        let seg = seal_i64(values.clone());
        let range = ValueRange::between(Value::I64(100), Value::I64(200));
        let expect = oracle(&values, 100, 200);
        // Repeat enough that the chooser routes through all three paths.
        for _ in 0..64 {
            let (ids, _) = seg.evaluate(&[q(0, range)]);
            assert_eq!(ids.as_slice(), expect.as_slice());
        }
        assert_explored(&seg.columns()[0]);
    }

    /// With a WAH budget configured, the chooser explores all *four* paths
    /// and every one of them — WAH included — answers byte-identically to
    /// the oracle, for materializing queries and counts alike.
    #[test]
    fn four_path_chooser_matches_oracle_including_wah() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let cfg =
            EngineConfig { segment_rows: 1024, wah_budget_bytes: usize::MAX, ..Default::default() };
        let mut rng = StdRng::seed_from_u64(11);
        let values: Vec<i64> = (0..4096).map(|_| rng.gen_range(0..500)).collect();
        let col: Column<i64> = Column::from(values.clone());
        let seg = SealedSegment::seal(0, vec![AnyColumn::I64(col)], None, &cfg);
        // Mixed selectivities so several buckets bootstrap through WAH.
        let cases = [(100i64, 140i64), (0, 499), (42, 42), (100, 350)];
        for _ in 0..96 {
            for &(lo, hi) in &cases {
                let range = ValueRange::between(Value::I64(lo), Value::I64(hi));
                let expect = oracle(&values, lo, hi);
                let (ids, _) = seg.evaluate(&[q(0, range)]);
                assert_eq!(ids.as_slice(), expect.as_slice(), "[{lo}, {hi}]");
                let (n, _) = seg.count(&[q(0, range)]);
                assert_eq!(n as usize, expect.len(), "count [{lo}, {hi}]");
            }
        }
        let col = &seg.columns()[0];
        assert_eq!(col.chooser().paths().len(), 4);
        assert_explored(col);
        assert_eq!(col.wah_built(), Some(true), "wah must have been lazily built");
        assert!(col.wah_bytes() > 0);
        assert!(col.index_bytes() > col.wah_bytes(), "index bytes include wah + the rest");
    }

    /// A WAH bitmap larger than its byte budget is rejected: the column
    /// permanently falls back to the three classic paths, reports zero WAH
    /// bytes, and queries keep answering correctly.
    #[test]
    fn wah_over_budget_falls_back_to_three_paths() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        // High-cardinality random data: WAH at its worst (§6.2); a budget
        // of a few hundred bytes is impossible to meet.
        let cfg = EngineConfig { segment_rows: 1024, wah_budget_bytes: 512, ..Default::default() };
        let mut rng = StdRng::seed_from_u64(13);
        let values: Vec<i64> = (0..4096).map(|_| rng.gen_range(0..1_000_000)).collect();
        let col: Column<i64> = Column::from(values.clone());
        let seg = SealedSegment::seal(0, vec![AnyColumn::I64(col)], None, &cfg);
        let range = ValueRange::between(Value::I64(0), Value::I64(1000));
        let expect = oracle(&values, 0, 1000);
        for _ in 0..64 {
            let (ids, _) = seg.evaluate(&[q(0, range)]);
            assert_eq!(ids.as_slice(), expect.as_slice());
        }
        let col = &seg.columns()[0];
        assert_eq!(col.wah_built(), Some(false), "the over-budget build must be rejected");
        assert_eq!(col.wah_bytes(), 0);
        assert!(!col.chooser().is_enabled(PathKind::Wah));
        // Review regression: the rejected-WAH query re-picks its path via
        // rechoose(), so 64 user queries count exactly 64 in the cadence.
        assert_eq!(col.chooser().queries(), 64, "a wah rejection must not double-count its query");
        // The three survivors finished their bootstrap regardless.
        let est = col.chooser().estimates();
        assert!(est[..3].iter().all(Option::is_some));
        assert_eq!(est[3], None, "a rejected wah never records a cost");
    }

    #[test]
    fn conjunction_matches_oracle() {
        let a: Vec<i64> = (0..2048).map(|i| i % 100).collect();
        let b: Vec<f64> = (0..2048).map(|i| (i % 37) as f64).collect();
        let seg = SealedSegment::seal(
            0,
            vec![AnyColumn::I64(Column::from(a.clone())), AnyColumn::F64(Column::from(b.clone()))],
            None,
            &cfg(),
        );
        let preds = [
            q(0, ValueRange::between(Value::I64(10), Value::I64(30))),
            q(1, ValueRange::at_most(Value::F64(9.0))),
        ];
        let (ids, stats) = seg.evaluate(&preds);
        let expect: Vec<u64> = (0..2048u64)
            .filter(|&i| (10..=30).contains(&a[i as usize]) && b[i as usize] <= 9.0)
            .collect();
        assert_eq!(ids.as_slice(), expect.as_slice());
        assert!(stats.index_probes > 0);
        let (n, _) = seg.count(&preds);
        assert_eq!(n as usize, expect.len());
    }

    #[test]
    fn binning_inheritance_and_drift() {
        let first: Vec<i64> = (0..2048).map(|i| i % 1000).collect();
        let seg1 = seal_i64(first);
        // Second segment drawn from a shifted domain: most values land in
        // the inherited binning's top overflow bin.
        let shifted: Vec<i64> = (0..2048).map(|i| 1_000_000 + i % 1000).collect();
        let col: Column<i64> = Column::from(shifted);
        let seg2 = SealedSegment::seal(2048, vec![AnyColumn::I64(col)], Some(&seg1), &cfg());
        assert!(seg1.columns()[0].drift() < 0.3, "fresh binning must not drift");
        assert!(
            seg2.columns()[0].drift() > 0.9,
            "shifted domain must show overflow drift, got {}",
            seg2.columns()[0].drift()
        );
        // Rebuild resamples: drift resets and queries still match.
        let seg2 = Arc::new(seg2);
        let rebuilt = seg2.with_rebuilt_columns(&[0]);
        assert_eq!(rebuilt.columns()[0].drift(), 0.0);
        assert_eq!(rebuilt.columns()[0].rebuilds(), 1);
        let range = ValueRange::between(Value::I64(1_000_100), Value::I64(1_000_200));
        let (a, _) = seg2.evaluate(&[q(0, range)]);
        let (b, _) = rebuilt.evaluate(&[q(0, range)]);
        assert_eq!(a, b);
    }

    #[test]
    fn merge_concatenates_rebins_once_and_resets_adaptivity() {
        let c = cfg();
        // Three adjacent segments sealed as a chain (binning inherited), the
        // later ones from a shifted domain so their inherited bins drift.
        let parts: Vec<Vec<i64>> = (0..3)
            .map(|s| (0..1024).map(|i| s as i64 * 500_000 + (i * 13) % 900).collect())
            .collect();
        let mut sealed: Vec<Arc<SealedSegment>> = Vec::new();
        for (s, values) in parts.iter().enumerate() {
            let prev = sealed.last().map(Arc::clone);
            let seg = SealedSegment::seal(
                s as u64 * 1024,
                vec![AnyColumn::I64(Column::from(values.clone()))],
                prev.as_deref(),
                &c,
            );
            sealed.push(Arc::new(seg));
        }
        // Warm the parts' choosers/observations so the reset is observable.
        let warm = ValueRange::between(Value::I64(0), Value::I64(100));
        for seg in &sealed {
            for _ in 0..8 {
                let _ = seg.evaluate(&[q(0, warm)]);
            }
        }
        let merged = SealedSegment::merge(&sealed, &c);
        assert_eq!(merged.base(), 0);
        assert_eq!(merged.rows(), 3 * 1024);
        // Fresh adaptivity: no learned costs, no carried observations.
        assert!(merged.columns()[0].chooser().estimates().iter().all(Option::is_none));
        assert_eq!(merged.columns()[0].chooser().queries(), 0);
        assert_eq!(merged.columns()[0].observations().queries.load(Ordering::Relaxed), 0);
        assert_eq!(merged.columns()[0].drift(), 0.0, "merge re-samples bins");
        // Answers equal the per-part answers shifted to global ids.
        let range = ValueRange::between(Value::I64(500_050), Value::I64(500_500));
        let (got, _) = merged.evaluate(&[q(0, range)]);
        let mut expect = IdList::new();
        for seg in &sealed {
            let (ids, _) = seg.evaluate(&[q(0, range)]);
            expect.extend_offset(&ids, seg.base());
        }
        assert_eq!(got, expect);
        assert!(!got.is_empty());
    }

    /// Satellite regression: a constant (or low-cardinality) column sealed
    /// in a binning-inheritance chain is perfectly in-domain — the old
    /// bin-index drift measure (`bin == 0 || bin == bins - 1`) must not
    /// report phantom overflow that sends the planner into a rebuild loop.
    #[test]
    fn constant_column_chain_reports_no_drift() {
        let c = cfg();
        let mut prev: Option<SealedSegment> = None;
        for s in 0..3u64 {
            let col: Column<i64> = Column::from(vec![42i64; 1024]);
            let seg = SealedSegment::seal(s * 1024, vec![AnyColumn::I64(col)], prev.as_ref(), &c);
            assert_eq!(
                seg.columns()[0].drift(),
                0.0,
                "segment {s} of a constant chain must not drift"
            );
            prev = Some(seg);
        }
        // A column holding exactly bins-1 distinct values skewed to its
        // maximum: the max lands in bin `bins - 1` (the rounded-up bin
        // count leaves it the top reachable bin), which the old measure
        // counted as overflow — near-1.0 drift on perfectly in-domain data.
        let skewed: Vec<i64> =
            (0..1024).map(|i| if i % 8 == 0 { i as i64 % 7 } else { 6 }).collect();
        let first =
            SealedSegment::seal(0, vec![AnyColumn::I64(Column::from(skewed.clone()))], None, &c);
        let second =
            SealedSegment::seal(1024, vec![AnyColumn::I64(Column::from(skewed))], Some(&first), &c);
        assert_eq!(
            second.columns()[0].drift(),
            0.0,
            "in-domain max values must not count as overflow drift"
        );
        // True out-of-domain appends still fire the signal, at both ends.
        let below: Vec<i64> = vec![-1000; 1024];
        let under =
            SealedSegment::seal(2048, vec![AnyColumn::I64(Column::from(below))], Some(&first), &c);
        assert!(under.columns()[0].drift() > 0.9, "underflow must still be measured");
        let above: Vec<i64> = vec![1_000_000; 1024];
        let over =
            SealedSegment::seal(3072, vec![AnyColumn::I64(Column::from(above))], Some(&first), &c);
        assert!(over.columns()[0].drift() > 0.9, "true overflow must still be measured");
        // A column whose sentinel/NULL marker is the type maximum: the
        // real border at `i64::MAX` is indistinguishable from the unused
        // binning slots, so MAX values must never count as phantom
        // overflow in their inheritance chain.
        let with_sentinel: Vec<i64> =
            (0..1024).map(|i| if i % 4 == 0 { i as i64 % 97 } else { i64::MAX }).collect();
        let s1 = SealedSegment::seal(
            0,
            vec![AnyColumn::I64(Column::from(with_sentinel.clone()))],
            None,
            &c,
        );
        let s2 = SealedSegment::seal(
            1024,
            vec![AnyColumn::I64(Column::from(with_sentinel))],
            Some(&s1),
            &c,
        );
        assert_eq!(
            s2.columns()[0].drift(),
            0.0,
            "type-max sentinel values must not report phantom drift"
        );
    }

    /// Satellite regression: the count and evaluate twins must report
    /// identical [`AccessStats`] on every path — the scan arm of
    /// `count_adaptive` used to hand-roll its stats and drift from the
    /// evaluate arm's accounting. Two identical fresh segments walk the
    /// deterministic bootstrap in lockstep (imprints, zonemap, scan), so
    /// call *i* of each takes the same path.
    #[test]
    fn count_and_evaluate_report_identical_stats_on_every_path() {
        let values: Vec<i64> = (0..3000).map(|i| (i * 37) % 500).collect();
        let eval_seg = seal_i64(values.clone());
        let count_seg = seal_i64(values);
        let range = ValueRange::between(Value::I64(100), Value::I64(200));
        for call in 0..3 {
            let (ids, es) = eval_seg.evaluate(&[q(0, range)]);
            let (n, cs) = count_seg.count(&[q(0, range)]);
            assert_eq!(n as usize, ids.len());
            assert_eq!(es, cs, "bootstrap call {call}: count and evaluate stats diverged");
        }
    }

    /// Satellite regression: an impossible predicate examines no values on
    /// *any* chooser path — the scan arm used to bill a full segment of
    /// `value_comparisons` (and the zonemap arm a zone's worth per
    /// overlapping zone), feeding phantom costs to everything that reads
    /// the query stats. Three queries walk the deterministic bootstrap
    /// (imprints, zonemap, scan), so every classic path is checked.
    #[test]
    fn empty_range_reports_zero_comparisons_on_every_path() {
        let seg = seal_i64((0..2048).collect());
        let range = ValueRange::between(Value::I64(10), Value::I64(5));
        for call in 0..3 {
            let (ids, stats) = seg.evaluate(&[q(0, range)]);
            assert!(ids.is_empty());
            assert_eq!(
                stats.value_comparisons, 0,
                "bootstrap call {call} billed comparisons for an impossible predicate"
            );
            assert_eq!(stats.lines_fetched, 0, "bootstrap call {call}");
        }
        let obs = seg.columns()[0].observations();
        assert_eq!(obs.comparisons.load(Ordering::Relaxed), 0);
        assert_eq!(obs.fp_rate(1), None, "no comparisons means no fp-rate signal");
    }

    #[test]
    fn empty_predicate_list_selects_all() {
        let seg = seal_i64((0..100).collect());
        let (ids, _) = seg.evaluate(&[]);
        assert_eq!(ids.len(), 100);
    }

    /// Regression for the fp-rate accounting bug: a segment whose row count
    /// is not a multiple of `values_per_block` has a partial tail cacheline;
    /// when a predicate emits that line wholesale it contributes fewer than
    /// `values_per_block` ids, and the old `emitted - lines_full * vpb`
    /// reconstruction undercounted check-path matches — here every compared
    /// value matches, so any observed fp-rate above zero is pure accounting
    /// error (and planner-visible: it triggers spurious rebuilds).
    #[test]
    fn fp_accounting_exact_with_partial_tail_emitted_wholesale() {
        // 1000 i32 rows, 16 values per 64-byte line: 62 full lines + an
        // 8-value tail. 41 distinct values (< 64) give one bin per value,
        // so the tail values 18..=25 sit in bins strictly inside the
        // predicate [10, 50] and the tail line is emitted via the
        // innermask fast path, while lines holding a 10 or a 50 (border
        // bins) take the value-check route — and every check matches.
        let values: Vec<i32> = (0..1000).map(|i| 10 + (i % 41)).collect();
        assert!(values.iter().all(|v| (10..=50).contains(v)));
        let col: Column<i32> = Column::from(values);
        let seg = SealedSegment::seal(0, vec![AnyColumn::I32(col)], None, &cfg());
        // One query; a fresh chooser's bootstrap routes it to Imprints.
        let range = ValueRange::between(Value::I32(10), Value::I32(50));
        let (ids, _) = seg.evaluate(&[q(0, range)]);
        assert_eq!(ids.len(), 1000);
        let obs = seg.columns()[0].observations();
        let cmp = obs.comparisons.load(Ordering::Relaxed);
        let matches = obs.matches.load(Ordering::Relaxed);
        assert!(cmp > 0, "some border line must have taken the check path");
        assert_eq!(
            matches, cmp,
            "every compared value matches, so matches must equal comparisons \
             (undercounting here is the old partial-tail formula bug)"
        );
        assert_eq!(obs.fp_rate(1), Some(0.0));
    }

    /// The count path is planner-visible: single-predicate counts go
    /// through the chooser and record cost + observations exactly like
    /// materializing queries.
    #[test]
    fn count_routes_through_chooser_and_records_observations() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(5);
        let values: Vec<i64> = (0..8192).map(|_| rng.gen_range(0..1_000_000)).collect();
        let seg = seal_i64(values.clone());
        let range = ValueRange::between(Value::I64(0), Value::I64(1000));
        let expect = oracle(&values, 0, 1000).len() as u64;
        // Enough repetitions that the bootstrap sweep visits all three
        // paths; every path must agree on the count.
        for _ in 0..64 {
            let (n, _) = seg.count(&[q(0, range)]);
            assert_eq!(n, expect);
        }
        let col = &seg.columns()[0];
        assert_eq!(col.chooser().queries(), 64, "counts must advance the chooser cadence");
        assert_explored(col);
        let obs = col.observations();
        assert_eq!(obs.queries.load(Ordering::Relaxed), 64);
        assert!(
            obs.comparisons.load(Ordering::Relaxed) > 0,
            "imprint-path counts on unclustered data must record fp work"
        );
    }

    #[test]
    fn fp_rate_visible_on_unclustered_data() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(3);
        // High-cardinality random data: imprints produce false positives.
        let values: Vec<i64> = (0..8192).map(|_| rng.gen_range(0..1_000_000)).collect();
        let seg = seal_i64(values);
        let range = ValueRange::between(Value::I64(0), Value::I64(1000));
        for _ in 0..32 {
            let _ = seg.evaluate(&[q(0, range)]);
        }
        let obs = seg.columns()[0].observations();
        assert!(obs.fp_rate(1).is_some(), "comparisons must have been observed");
    }

    /// Builds the two-column segment every multi-predicate test below
    /// shares: `a = i % 100`, `b = i % 37` over 2048 rows.
    fn two_col_seg(cfg: &EngineConfig) -> (SealedSegment, Vec<i64>, Vec<i64>) {
        let a: Vec<i64> = (0..2048).map(|i| i % 100).collect();
        let b: Vec<i64> = (0..2048).map(|i| i % 37).collect();
        let seg = SealedSegment::seal(
            0,
            vec![AnyColumn::I64(Column::from(a.clone())), AnyColumn::I64(Column::from(b.clone()))],
            None,
            cfg,
        );
        (seg, a, b)
    }

    /// Satellite regression: a conjunction must bill *every* touched
    /// column's observations — queries on all predicates (even when an
    /// earlier predicate's candidates empty the plan), and comparisons on
    /// the columns that actually weeded values — so the maintenance
    /// planner and `path_report` see multi-predicate traffic instead of
    /// attributing the whole query to the first column.
    #[test]
    fn conjunction_bills_every_touched_column() {
        let (seg, a, b) = two_col_seg(&cfg());
        let preds = [
            q(0, ValueRange::between(Value::I64(10), Value::I64(40))),
            q(1, ValueRange::at_most(Value::I64(8))),
        ];
        let expect: Vec<u64> = (0..2048u64)
            .filter(|&i| (10..=40).contains(&a[i as usize]) && b[i as usize] <= 8)
            .collect();
        let rounds = 32u64;
        for _ in 0..rounds {
            let (ids, _) = seg.evaluate(&preds);
            assert_eq!(ids.as_slice(), expect.as_slice());
        }
        for (col, name) in seg.columns().iter().zip(["a", "b"]) {
            let obs = col.observations();
            assert_eq!(
                obs.queries.load(Ordering::Relaxed),
                rounds,
                "column {name} must be billed one query per conjunction"
            );
            assert!(
                obs.comparisons.load(Ordering::Relaxed) > 0,
                "column {name} weeded values but recorded no comparisons"
            );
        }
        // Early exit — an impossible first predicate empties the plan
        // before the second column is touched — still bills the query on
        // every named column, so planner traffic stays honest.
        let before = seg.columns()[1].observations().queries.load(Ordering::Relaxed);
        let (ids, _) = seg.evaluate(&[
            q(0, ValueRange::between(Value::I64(500), Value::I64(400))),
            q(1, ValueRange::at_most(Value::I64(8))),
        ]);
        assert!(ids.is_empty());
        assert_eq!(
            seg.columns()[1].observations().queries.load(Ordering::Relaxed),
            before + 1,
            "early exit must still bill the untouched column's query"
        );
    }

    /// IN-lists (multi-interval `ValueSet`s) must answer exactly like the
    /// brute-force oracle through both conjunction plans.
    #[test]
    fn in_list_matches_oracle() {
        let (seg, a, b) = two_col_seg(&cfg());
        let preds = [
            (0usize, ValueSet::points([Value::I64(5), Value::I64(17), Value::I64(91)])),
            (1usize, ValueSet::range(ValueRange::at_most(Value::I64(20)))),
        ];
        let expect: Vec<u64> = (0..2048u64)
            .filter(|&i| [5, 17, 91].contains(&a[i as usize]) && b[i as usize] <= 20)
            .collect();
        assert!(!expect.is_empty(), "test data must produce hits");
        // Enough repeats that the plan chooser runs both plans.
        for _ in 0..8 {
            let (ids, _) = seg.evaluate(&preds);
            assert_eq!(ids.as_slice(), expect.as_slice());
            let (n, _) = seg.count(&preds);
            assert_eq!(n as usize, expect.len());
        }
    }

    /// OR groups union their arms; the empty group is the identity of OR
    /// and matches nothing (unlike the empty conjunction, which matches
    /// everything).
    #[test]
    fn disjunction_matches_oracle() {
        let (seg, a, b) = two_col_seg(&cfg());
        let preds = [
            q(0, ValueRange::between(Value::I64(95), Value::I64(99))),
            q(1, ValueRange::equals(Value::I64(3))),
        ];
        let expect: Vec<u64> = (0..2048u64)
            .filter(|&i| (95..=99).contains(&a[i as usize]) || b[i as usize] == 3)
            .collect();
        let (ids, stats) = seg.evaluate_any(&preds);
        assert_eq!(ids.as_slice(), expect.as_slice());
        assert!(stats.index_probes > 0);
        let (none, _) = seg.evaluate_any(&[]);
        assert!(none.is_empty(), "the empty disjunction selects nothing");
        let (all, _) = seg.evaluate(&[]);
        assert_eq!(all.len(), 2048, "the empty conjunction selects everything");
    }

    /// The fused and per-predicate plans must agree byte-for-byte: with
    /// planning enabled the chooser's bootstrap alternates both plans over
    /// the same query, and with `conjunction_planning: false` the pinned
    /// per-predicate baseline must produce the identical answer.
    #[test]
    fn fused_and_per_pred_plans_agree() {
        let base = cfg();
        let pinned = EngineConfig { conjunction_planning: false, ..cfg() };
        let (planned, a, b) = two_col_seg(&base);
        let (baseline, _, _) = two_col_seg(&pinned);
        let cases: &[(i64, i64, i64)] = &[(10, 30, 9), (0, 99, 36), (50, 50, 0), (80, 20, 5)];
        for &(lo, hi, bmax) in cases {
            let preds = [
                q(0, ValueRange::between(Value::I64(lo), Value::I64(hi))),
                q(1, ValueRange::at_most(Value::I64(bmax))),
            ];
            let expect: Vec<u64> = (0..2048u64)
                .filter(|&i| (lo..=hi).contains(&a[i as usize]) && b[i as usize] <= bmax)
                .collect();
            for _ in 0..8 {
                let (ids, _) = planned.evaluate(&preds);
                assert_eq!(ids.as_slice(), expect.as_slice(), "planned {lo}..={hi} & <={bmax}");
                let (ids, _) = baseline.evaluate(&preds);
                assert_eq!(ids.as_slice(), expect.as_slice(), "pinned {lo}..={hi} & <={bmax}");
            }
        }
        // The arbitrated segment measured both plans; the pinned one
        // never consulted a chooser (per-predicate throughout).
        let chooser = planned.plan_chooser(&[
            q(0, ValueRange::equals(Value::I64(0))),
            q(1, ValueRange::equals(Value::I64(0))),
        ]);
        assert!(chooser.queries() > 0, "planned segment must have recorded plan costs");
        let est = chooser.estimates();
        assert!(est.iter().all(Option::is_some), "bootstrap must have measured both plans");
    }
}
